//! System steppers: the reference per-cycle driver and the event-driven
//! wake-list scheduler.
//!
//! Both steppers advance a set of [`Core`]s against a shared LLC port on the
//! reference timeline and fire an epoch callback on a fixed cycle grid. The
//! **reference** stepper calls [`Core::step`] on *every* core at every
//! visited cycle — the obviously-correct formulation the equivalence goldens
//! were recorded against. The **event-driven** stepper keeps a wake list of
//! per-core `next_event` cycles and steps only cores that are due, batching
//! micro-steps of a lone runnable core up to the next barrier (another
//! core's wake or the epoch boundary).
//!
//! The two are bit-identical by construction: the [`crate::StepOutcome`]
//! wake-list
//! contract guarantees a skipped step is an observable no-op and that wakes
//! are stable under recomputation, so both steppers perform the same
//! progress work at the same cycles. `harness`'s differential suites
//! (`cpusim/tests/stepper_reference.rs`, `harness/tests/equivalence.rs`)
//! pin the equivalence across workloads, core counts and DVFS dilation.
//!
//! Cores are stepped in ascending index order within a cycle; LLC/DRAM state
//! therefore evolves identically under both steppers.

use simkit::types::Cycle;

use crate::core::{Core, LlcPort};

/// Which stepping algorithm drives the system loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepperKind {
    /// Step every core at every visited cycle (the documented reference).
    Reference,
    /// Step only cores whose advertised `next_event` has arrived.
    #[default]
    EventDriven,
}

/// Epoch callback verdict: keep simulating or return to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochControl {
    /// Continue to the next event.
    Continue,
    /// Return immediately after this epoch (used by fixed-epoch drivers
    /// like `inspect`); the stepper can be re-entered later.
    Stop,
}

/// Drives cores, the shared LLC and the epoch grid; owns simulation time.
///
/// One stepper instance persists across phases (warmup, then measurement):
/// `now`, the epoch anchor and the wake list all carry over, so a run is a
/// single timeline regardless of how many [`SystemStepper::run`] calls
/// sliced it.
#[derive(Debug)]
pub struct SystemStepper {
    kind: StepperKind,
    now: Cycle,
    next_epoch: Cycle,
    epoch_cycles: u64,
    /// Per-core stored wake: the `next_event` from the core's last step
    /// (event-driven only; lazily sized on first run).
    wakes: Vec<Cycle>,
}

impl SystemStepper {
    /// Creates a stepper at cycle 0 with the first epoch boundary one whole
    /// epoch in.
    pub fn new(kind: StepperKind, epoch_cycles: u64) -> SystemStepper {
        assert!(epoch_cycles > 0, "epoch length must be positive");
        SystemStepper {
            kind,
            now: Cycle::ZERO,
            next_epoch: Cycle(epoch_cycles),
            epoch_cycles,
            wakes: Vec::new(),
        }
    }

    /// Current simulation time (the cycle the next event will execute at).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The next epoch boundary cycle.
    pub fn next_epoch(&self) -> Cycle {
        self.next_epoch
    }

    /// Runs until every core `i` has retired at least `targets[i]`
    /// instructions (or `now` reaches `max_cycles`), returning for each core
    /// the cycle at which its target was first observed crossed.
    ///
    /// The epoch callback fires whenever `now` lands on the epoch grid —
    /// *after* the cores due at that cycle have stepped — and may retune the
    /// cores (partitioning, DVFS ratios); the stepper refreshes its wake
    /// list afterwards via [`Core::wake_hint`]. Returning
    /// [`EpochControl::Stop`] exits immediately (cores already stepped at
    /// the boundary cycle; time has not advanced past it).
    pub fn run<P, F>(
        &mut self,
        cores: &mut [Core],
        port: &mut P,
        targets: &[u64],
        max_cycles: Cycle,
        mut on_epoch: F,
    ) -> Vec<Option<Cycle>>
    where
        P: LlcPort,
        F: FnMut(Cycle, &mut [Core], &mut P) -> EpochControl,
    {
        let n = cores.len();
        assert_eq!(targets.len(), n, "one retire target per core");
        if self.wakes.len() != n {
            // First run (or a changed core set): everyone is due now.
            self.wakes = vec![self.now; n];
        }
        let mut finish: Vec<Option<Cycle>> = vec![None; n];
        let mut remaining = n;
        for i in 0..n {
            if cores[i].retired() >= targets[i] {
                finish[i] = Some(self.now);
                remaining -= 1;
            }
        }

        while remaining > 0 && self.now < max_cycles {
            let now = self.now;
            let epoch_due = now >= self.next_epoch;

            // Fast path: exactly one core due, no epoch imminent — batch its
            // micro-steps up to the next barrier without re-scanning.
            if !epoch_due && self.kind == StepperKind::EventDriven {
                if let Some(i) = self.lone_due_core(now) {
                    let mut barrier = self.next_epoch;
                    for (j, &w) in self.wakes.iter().enumerate() {
                        if j != i {
                            barrier = barrier.min(w);
                        }
                    }
                    let mut t = now;
                    loop {
                        let out = cores[i].step(t, port);
                        let w = out.next_event.max(t + 1);
                        let advanced = w.min(barrier);
                        if finish[i].is_none() && cores[i].retired() >= targets[i] {
                            finish[i] = Some(advanced);
                            remaining -= 1;
                        }
                        t = advanced;
                        if remaining == 0 || t >= max_cycles || w >= barrier {
                            self.wakes[i] = w;
                            break;
                        }
                    }
                    self.now = t;
                    continue;
                }
            }

            // General path: step every due core (event-driven) or every core
            // (reference) in ascending index order.
            for (i, core) in cores.iter_mut().enumerate() {
                if self.kind == StepperKind::Reference || self.wakes[i] <= now {
                    let out = core.step(now, port);
                    self.wakes[i] = out.next_event.max(now + 1);
                }
            }

            if epoch_due {
                let control = on_epoch(now, cores, port);
                self.next_epoch += self.epoch_cycles;
                // The decision may have re-anchored DVFS clock grids; the
                // hint equals the stored wake when a core's clock is
                // untouched, so the blanket refresh is behaviour-preserving.
                for (i, core) in cores.iter().enumerate() {
                    self.wakes[i] = core.wake_hint(now);
                }
                if control == EpochControl::Stop {
                    return finish;
                }
            }

            let mut next = self.next_epoch;
            for &w in &self.wakes {
                next = next.min(w);
            }
            self.now = next.max(now + 1);
            for i in 0..n {
                if finish[i].is_none() && cores[i].retired() >= targets[i] {
                    finish[i] = Some(self.now);
                    remaining -= 1;
                }
            }
        }
        finish
    }

    /// Index of the only core due at `now`, if exactly one is.
    fn lone_due_core(&self, now: Cycle) -> Option<usize> {
        let mut due = None;
        for (i, &w) in self.wakes.iter().enumerate() {
            if w <= now {
                if due.is_some() {
                    return None;
                }
                due = Some(i);
            }
        }
        due
    }
}
