//! # cpusim — out-of-order-lite core model
//!
//! A trace-driven core model reproducing the performance-relevant behaviour
//! of the paper's Marss-x86 configuration (Table 2): 4-wide out-of-order
//! issue, 128-entry ROB, 48-entry LSQ, gshare + BTB with a 10-cycle minimum
//! misprediction penalty, private 32 kB 4-way L1 I/D caches with MSHRs.
//!
//! The model tracks per-instruction *completion times* through a ROB-shaped
//! window: independent cache misses overlap (memory-level parallelism is
//! bounded by the ROB, LSQ and MSHRs exactly as in hardware), dependent loads
//! serialize, mispredictions stall the front end. That coupling between LLC
//! hit rate and IPC is all the paper's evaluation needs from the core.
//!
//! Cores talk to the shared LLC through the [`LlcPort`] trait so the same
//! core drives any of the five partitioning schemes. The [`stepper`] module
//! drives a set of cores against that port: a per-cycle reference stepper
//! and a bit-identical event-driven wake-list scheduler.
//!
//! Per-core DVFS lives in [`clock`]: a [`VfTable`] of discrete V/f operating
//! points plus the [`CoreClock`] dilation that stretches a down-clocked
//! core's cycles over the nominal-frequency reference timeline (so DRAM
//! latency in core cycles shrinks as the clock slows, exactly as in
//! hardware).
//!
//! [`prefetch`] adds a throttleable next-line/stride L1-D prefetcher: a
//! per-epoch *degree* (0 = off) set through [`Core::set_prefetch_degree`]
//! controls how many lines each demand miss runs ahead; prefetch reads
//! reach the LLC through the distinct [`LlcPort::prefetch`] entry so the
//! shared cache can account and bandwidth-regulate them separately.

pub mod bpred;
pub mod clock;
pub mod core;
pub mod prefetch;
pub mod stepper;
pub mod trace;

pub use bpred::{BranchStats, Gshare};
pub use clock::{CoreClock, OperatingPoint, VfTable};
pub use core::{Core, CoreConfig, CoreStats, LlcPort, StepOutcome};
pub use prefetch::Prefetcher;
pub use stepper::{EpochControl, StepperKind, SystemStepper};
pub use trace::{Instr, InstrKind, InstrSource, TraceError, TraceSource};
