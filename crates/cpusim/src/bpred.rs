//! Gshare branch predictor with a branch target buffer.
//!
//! Matches the paper's front end: gshare direction prediction plus a
//! 1024-entry 4-way BTB; a wrong direction or a taken branch that misses in
//! the BTB costs the (minimum) 10-cycle redirect penalty applied by the core.

use serde::{Deserialize, Serialize};
use simkit::Counter;

/// Direction/target prediction statistics.
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct BranchStats {
    /// Branches observed.
    pub branches: Counter,
    /// Redirects (direction mispredictions or BTB misses on taken branches).
    pub mispredictions: Counter,
}

impl BranchStats {
    /// Misprediction rate over all observed branches.
    pub fn mpki_rate(&self) -> f64 {
        let b = self.branches.get();
        if b == 0 {
            0.0
        } else {
            self.mispredictions.get() as f64 / b as f64
        }
    }
}

/// Gshare predictor: global history XOR PC indexing a table of 2-bit
/// saturating counters, plus a 4-way set-associative BTB.
///
/// The PHT packs four 2-bit counters per byte (the paper's 4096-entry table
/// is 1 KiB), keeping the whole direction table L1-resident on the host.
#[derive(Debug, Clone)]
pub struct Gshare {
    history: u64,
    history_bits: u32,
    /// Packed PHT: counter `i` lives in bits `(i % 4) * 2 ..` of byte `i / 4`.
    pht: Vec<u8>,
    /// Number of 2-bit counters (a power of two; `pht.len() * 4`).
    pht_entries: usize,
    btb_tags: Vec<u64>, // [set * assoc + way]
    btb_sets: usize,
    btb_assoc: usize,
    btb_next: Vec<u8>, // round-robin fill pointer per set
    stats: BranchStats,
}

impl Gshare {
    /// Creates a predictor with `pht_bits` of gshare index (table size
    /// `2^pht_bits`) and a `btb_entries`-entry, `btb_assoc`-way BTB.
    ///
    /// # Panics
    ///
    /// Panics if `btb_entries` is not divisible by `btb_assoc`.
    pub fn new(pht_bits: u32, btb_entries: usize, btb_assoc: usize) -> Gshare {
        assert!(btb_assoc > 0 && btb_entries.is_multiple_of(btb_assoc));
        let btb_sets = btb_entries / btb_assoc;
        let pht_entries = 1usize << pht_bits;
        Gshare {
            history: 0,
            history_bits: pht_bits.min(16),
            // All counters start weakly taken (0b10 in every 2-bit lane).
            pht: vec![0b1010_1010; pht_entries.div_ceil(4)],
            pht_entries,
            btb_tags: vec![u64::MAX; btb_entries],
            btb_sets,
            btb_assoc,
            btb_next: vec![0; btb_sets],
            stats: BranchStats::default(),
        }
    }

    /// The paper's configuration: 4096-entry PHT, 1024-entry 4-way BTB.
    pub fn paper_default() -> Gshare {
        Gshare::new(12, 1024, 4)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Observes a branch: predicts, updates state, and reports whether the
    /// front end must redirect (misprediction).
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.stats.branches.inc();
        let mask = (self.pht_entries - 1) as u64;
        let idx = (((pc >> 2) ^ self.history) & mask) as usize;
        let shift = (idx & 3) * 2;
        let byte = &mut self.pht[idx >> 2];
        let ctr = (*byte >> shift) & 0b11;
        let predicted_taken = ctr >= 2;
        // 2-bit saturating update within the packed lane.
        let updated = if taken {
            (ctr + 1).min(3)
        } else {
            ctr.saturating_sub(1)
        };
        *byte = (*byte & !(0b11 << shift)) | (updated << shift);
        // Global history update.
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);

        let dir_wrong = predicted_taken != taken;
        let target_unknown = taken && !self.btb_lookup_insert(pc);
        let mispredict = dir_wrong || target_unknown;
        if mispredict {
            self.stats.mispredictions.inc();
        }
        mispredict
    }

    /// Returns true on BTB hit; inserts the branch on a miss.
    fn btb_lookup_insert(&mut self, pc: u64) -> bool {
        let set = ((pc >> 2) as usize) & (self.btb_sets - 1);
        let base = set * self.btb_assoc;
        let tag = pc >> 2;
        for w in 0..self.btb_assoc {
            if self.btb_tags[base + w] == tag {
                return true;
            }
        }
        let way = self.btb_next[set] as usize % self.btb_assoc;
        self.btb_tags[base + way] = tag;
        self.btb_next[set] = self.btb_next[set].wrapping_add(1);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut g = Gshare::paper_default();
        // Warm up: first observation may mispredict (BTB cold).
        for _ in 0..8 {
            g.observe(0x400, true);
        }
        let before = g.stats().mispredictions.get();
        for _ in 0..100 {
            g.observe(0x400, true);
        }
        assert_eq!(
            g.stats().mispredictions.get(),
            before,
            "steady always-taken branch should be perfectly predicted"
        );
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::paper_default();
        for i in 0..64 {
            g.observe(0x800, i % 2 == 0);
        }
        let before = g.stats().mispredictions.get();
        for i in 0..100 {
            g.observe(0x800, i % 2 == 0);
        }
        let new = g.stats().mispredictions.get() - before;
        assert!(new <= 5, "history should capture alternation, got {new}");
    }

    #[test]
    fn random_branches_mispredict_often() {
        let mut g = Gshare::paper_default();
        let mut x = 0x12345678u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            g.observe(0x900 + ((x >> 60) << 2), (x >> 33) & 1 == 1);
        }
        let rate = g.stats().mpki_rate();
        assert!(rate > 0.25, "random outcomes should hurt: rate={rate}");
    }

    #[test]
    fn not_taken_branches_never_need_btb() {
        let mut g = Gshare::new(4, 8, 4);
        // Saturate toward not-taken first.
        for _ in 0..4 {
            g.observe(0x100, false);
        }
        let before = g.stats().mispredictions.get();
        for _ in 0..50 {
            g.observe(0x100, false);
        }
        assert_eq!(g.stats().mispredictions.get(), before);
    }

    #[test]
    fn btb_capacity_evictions_cause_redirects() {
        let mut g = Gshare::new(12, 8, 4); // tiny BTB: 2 sets x 4 ways
                                           // 16 distinct always-taken branches thrash the BTB.
        for round in 0..20 {
            for b in 0..16u64 {
                g.observe(0x1000 + b * 8, true);
            }
            if round == 0 {
                // after warmup direction is learned; later redirects are BTB.
            }
        }
        assert!(g.stats().mispredictions.get() > 16, "BTB thrash must show");
    }
}
