//! Throttleable next-line/stride prefetcher for the L1 data cache.
//!
//! A per-core hardware prefetcher in the classic two-state stride style:
//! it watches demand-miss line numbers, locks onto a repeated stride, and
//! proposes up to `degree` lines ahead of each miss. The degree is the
//! throttle — `0` disables the prefetcher entirely (bit-identical to a
//! build without one), `1` is a conservative single next-line/stride
//! fetch, higher degrees run further ahead. Policies drive the degree per
//! epoch through `AllocationDecision::hints::prefetch_slots`.
//!
//! The prefetcher itself is a pure function of the core's own demand-miss
//! sequence: no randomness, no cross-core state, no clock reads. The core
//! only consults it inside `dispatch` (a progress step), so the wake-list
//! `StepOutcome` contract is untouched, and prefetches that find the L1
//! MSHR file full are *dropped*, never stalled on.

/// Most lines a single miss may prefetch (degree is clamped to this).
pub const MAX_DEGREE: usize = 4;

/// Prefetched lines remembered for usefulness accounting.
const RECENT: usize = 32;

/// Repeats of a delta required before striding replaces next-line.
const LOCK_CONFIDENCE: u8 = 2;

/// Per-core stride prefetcher state.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    degree: u8,
    /// Line number of the last observed demand miss.
    last_line: u64,
    have_last: bool,
    /// Candidate stride in lines (may be negative).
    stride: i64,
    /// Consecutive confirmations of `stride`.
    confidence: u8,
    /// Ring of recently prefetched line numbers not yet demanded
    /// (`u64::MAX` = empty slot), for accuracy accounting.
    recent: [u64; RECENT],
    recent_head: usize,
}

impl Default for Prefetcher {
    fn default() -> Self {
        Prefetcher::new()
    }
}

impl Prefetcher {
    /// A disabled prefetcher (degree 0).
    pub fn new() -> Prefetcher {
        Prefetcher {
            degree: 0,
            last_line: 0,
            have_last: false,
            stride: 0,
            confidence: 0,
            recent: [u64::MAX; RECENT],
            recent_head: 0,
        }
    }

    /// Sets the aggressiveness: lines fetched ahead per demand miss,
    /// clamped to [`MAX_DEGREE`]. `0` turns the prefetcher off.
    pub fn set_degree(&mut self, degree: u8) {
        self.degree = degree.min(MAX_DEGREE as u8);
    }

    /// The current degree.
    pub fn degree(&self) -> u8 {
        self.degree
    }

    /// Whether the prefetcher is active. The core consults nothing below
    /// this check when off, so degree 0 is exactly the pre-prefetcher
    /// machine.
    pub fn enabled(&self) -> bool {
        self.degree > 0
    }

    /// Observes a demand miss on `line_no` and returns the prefetch
    /// candidates it proposes: `degree` lines ahead along the locked
    /// stride (or next-line until a stride is locked), oldest first.
    /// Candidates that would leave the data line-number space are
    /// dropped.
    pub fn observe_miss(&mut self, line_no: u64) -> impl Iterator<Item = u64> {
        let step = if self.have_last {
            let delta = line_no.wrapping_sub(self.last_line) as i64;
            if delta != 0 && delta == self.stride {
                self.confidence = self.confidence.saturating_add(1);
            } else {
                self.stride = delta;
                self.confidence = u8::from(delta != 0);
            }
            if self.confidence >= LOCK_CONFIDENCE {
                self.stride
            } else {
                1
            }
        } else {
            1
        };
        self.last_line = line_no;
        self.have_last = true;
        let degree = self.degree as i64;
        (1..=degree).filter_map(move |k| {
            let cand = line_no.wrapping_add((step * k) as u64);
            // Stay far below the I-side address tag (bit 48 of the byte
            // address) and reject wrap-arounds below line 0.
            (cand != line_no && cand < (1u64 << 40)).then_some(cand)
        })
    }

    /// Records that `line_no` was actually issued to the memory system.
    pub fn mark_issued(&mut self, line_no: u64) {
        self.recent[self.recent_head] = line_no;
        self.recent_head = (self.recent_head + 1) % RECENT;
    }

    /// Notes a demand access; returns `true` when it is the first demand
    /// touch of a recently prefetched line (a *useful* prefetch).
    pub fn note_demand(&mut self, line_no: u64) -> bool {
        for slot in self.recent.iter_mut() {
            if *slot == line_no {
                *slot = u64::MAX;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(p: &mut Prefetcher, line: u64) -> Vec<u64> {
        p.observe_miss(line).collect()
    }

    #[test]
    fn degree_zero_proposes_nothing() {
        let mut p = Prefetcher::new();
        assert!(!p.enabled());
        assert_eq!(cands(&mut p, 100), Vec::<u64>::new());
    }

    #[test]
    fn next_line_until_a_stride_locks() {
        let mut p = Prefetcher::new();
        p.set_degree(2);
        // First misses: next-line guesses.
        assert_eq!(cands(&mut p, 100), vec![101, 102]);
        assert_eq!(cands(&mut p, 104), vec![105, 106]);
        // Second occurrence of stride 4 locks it.
        assert_eq!(cands(&mut p, 108), vec![112, 116]);
        assert_eq!(cands(&mut p, 112), vec![116, 120]);
    }

    #[test]
    fn stride_break_falls_back_to_next_line() {
        let mut p = Prefetcher::new();
        p.set_degree(1);
        for l in [100, 104, 108] {
            cands(&mut p, l);
        }
        assert_eq!(cands(&mut p, 109), vec![110], "broken stride → next-line");
    }

    #[test]
    fn negative_strides_work() {
        let mut p = Prefetcher::new();
        p.set_degree(2);
        cands(&mut p, 1000);
        cands(&mut p, 992);
        assert_eq!(cands(&mut p, 984), vec![976, 968]);
    }

    #[test]
    fn usefulness_is_counted_once_per_line() {
        let mut p = Prefetcher::new();
        p.set_degree(1);
        p.mark_issued(500);
        assert!(p.note_demand(500));
        assert!(!p.note_demand(500), "second touch is a plain hit");
        assert!(!p.note_demand(501));
    }

    #[test]
    fn candidates_stay_inside_the_address_space() {
        let mut p = Prefetcher::new();
        p.set_degree(4);
        cands(&mut p, 10);
        cands(&mut p, 5); // stride -5
        let c = cands(&mut p, 0);
        assert!(
            c.iter().all(|&l| l < (1 << 40)),
            "no wrap below zero: {c:?}"
        );
    }

    #[test]
    fn degree_clamps_to_max() {
        let mut p = Prefetcher::new();
        p.set_degree(200);
        assert_eq!(p.degree(), MAX_DEGREE as u8);
    }
}
