//! Differential property tests: the event-driven wake-list stepper must be
//! *bit-identical* to the per-cycle reference stepper.
//!
//! Each case builds two identical systems — same cores, same instruction
//! streams, same (order-sensitive) LLC double — and drives one with
//! [`StepperKind::Reference`] and one with [`StepperKind::EventDriven`],
//! then compares the complete observable state: retired counts, per-core
//! stats (minus the per-*attempt* `rob_stalls`/`lsq_stalls` samplers the
//! wake-list contract explicitly excludes), L1 and branch-predictor stats,
//! the full LLC access and writeback sequences, the finish cycles, the
//! epoch-callback cycles and the final simulation time. Covered axes:
//! 1/2/4/8 cores, five synthetic stream flavours, `.ctrace` replay via
//! [`TraceSource`], nominal clocks, per-epoch DVFS dilation and per-epoch
//! prefetch-degree rotation (the full CBP throttle range).
//!
//! The suite also pins the two halves of the contract the equivalence
//! rests on: the [`cpusim::StepOutcome`] wake-list guarantees (progress or
//! a strictly-future, *stable* wake whose gap cycles are observable
//! no-ops) and the epoch grid (`next_epoch += epoch_cycles` anchoring
//! fires every boundary exactly on the grid however far wakes jump).

use std::sync::Arc;

use cpusim::{
    Core, CoreConfig, EpochControl, Instr, InstrSource, LlcPort, StepperKind, SystemStepper,
    TraceSource,
};
use proptest::prelude::*;
use simkit::types::{CoreId, Cycle, LineAddr};

/// DVFS dilation ratios rotated through by the epoch callback (all from
/// the paper's 45 nm V/f table shape: nominal down to 0.6×).
const RATIOS: [f64; 4] = [1.0, 1.25, 1.6, 2.0];

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Deterministic synthetic instruction stream, parameterized by flavour:
/// 0 ALU-only, 1 streaming loads (MLP), 2 pointer chasing (stall-heavy),
/// 3 branchy, 4 mixed.
struct SynthSource {
    state: u64,
    i: u64,
    flavor: u8,
}

impl SynthSource {
    fn new(seed: u64, core: usize, flavor: u8) -> SynthSource {
        SynthSource {
            state: (seed ^ ((core as u64 + 1) << 32)) | 1,
            i: 0,
            flavor: flavor % 5,
        }
    }
}

impl InstrSource for SynthSource {
    fn next_instr(&mut self) -> Instr {
        self.i += 1;
        let r = xorshift(&mut self.state);
        match self.flavor {
            0 => Instr::alu((r % 512) & !3),
            1 => Instr::load(64, self.i * 64),
            2 => {
                let mut l = Instr::load(64, self.i * 4096);
                l.dep_prev_load = true;
                l
            }
            3 => {
                if self.i.is_multiple_of(3) {
                    Instr::branch(128 + (r % 8) * 4, r & 1 == 0)
                } else {
                    Instr::alu(64)
                }
            }
            _ => match r % 8 {
                0..=2 => Instr::alu((r >> 3) % 1024),
                3 | 4 => Instr::load((r >> 3) % 4096, (r >> 10) % (1 << 20)),
                5 => Instr::store((r >> 3) % 4096, (r >> 10) % (1 << 18)),
                6 => Instr::branch((r >> 3) % 2048, r & 1 == 0),
                _ => {
                    let mut l = Instr::load(64, (r >> 10) % (1 << 16));
                    l.dep_prev_load = r & 2 == 0;
                    l
                }
            },
        }
    }
}

/// Order-sensitive LLC double: a shared bank-busy cursor makes every fill
/// latency depend on the *sequence* of prior accesses, so any divergence
/// in access order between the two steppers cascades into different
/// latencies and fails loudly instead of washing out.
#[derive(Default)]
struct RecordingLlc {
    busy: Cycle,
    log: Vec<(u64, u8, u64, bool)>,
    wb: Vec<(u64, u8, u64)>,
    pf: Vec<(u64, u8, u64)>,
}

impl LlcPort for RecordingLlc {
    fn access(&mut self, now: Cycle, core: CoreId, line: LineAddr, write: bool) -> Cycle {
        self.log.push((now.raw(), core.0, line.raw(), write));
        self.busy = self.busy.max(now) + 3;
        self.busy + 57 + (line.raw() % 5) * 31
    }

    fn writeback(&mut self, now: Cycle, core: CoreId, line: LineAddr) {
        self.wb.push((now.raw(), core.0, line.raw()));
    }

    fn prefetch(&mut self, now: Cycle, core: CoreId, line: LineAddr) -> Cycle {
        // Logged separately from demand traffic so a stepper that reorders
        // prefetch issue against demand issue fails loudly; the latency
        // shares the demand path's order-sensitive bank cursor.
        self.pf.push((now.raw(), core.0, line.raw()));
        self.busy = self.busy.max(now) + 3;
        self.busy + 57 + (line.raw() % 5) * 31
    }
}

/// Everything observable after a run.
#[derive(Debug, PartialEq)]
struct Snapshot {
    retired: Vec<u64>,
    loads: Vec<u64>,
    stores: Vec<u64>,
    redirect_cycles: Vec<u64>,
    l1d: Vec<(u64, u64, u64, u64)>,
    l1i: Vec<(u64, u64, u64, u64)>,
    branches: Vec<(u64, u64)>,
    finish: Vec<Option<u64>>,
    epochs: Vec<u64>,
    end: u64,
    prefetch: Vec<(u64, u64, u64, u64)>,
    llc_log: Vec<(u64, u8, u64, bool)>,
    llc_wb: Vec<(u64, u8, u64)>,
    llc_pf: Vec<(u64, u8, u64)>,
}

const EPOCH: u64 = 7_500;
const TARGET: u64 = 2_000;
const MAX: Cycle = Cycle(150_000);

fn run_snapshot(
    kind: StepperKind,
    n: usize,
    mk: &dyn Fn(usize) -> Box<dyn InstrSource + Send>,
    dvfs: bool,
    prefetch: bool,
) -> Snapshot {
    let mut cores: Vec<Core> = (0..n)
        .map(|i| {
            let mut c = Core::new(CoreId(i as u8), CoreConfig::default(), mk(i));
            if prefetch {
                c.set_prefetch_degree((i % (cpusim::prefetch::MAX_DEGREE + 1)) as u8);
            }
            c
        })
        .collect();
    let mut llc = RecordingLlc::default();
    let mut stepper = SystemStepper::new(kind, EPOCH);
    let targets = vec![TARGET; n];
    let mut epochs: Vec<u64> = Vec::new();
    let finish = stepper.run(&mut cores, &mut llc, &targets, MAX, |now, cores, _| {
        epochs.push(now.raw());
        let k = epochs.len();
        if dvfs {
            for (i, c) in cores.iter_mut().enumerate() {
                c.set_clock_ratio(now, RATIOS[(i + k) % RATIOS.len()]);
            }
        }
        if prefetch {
            // Rotate through the full degree range, like an epoch policy
            // re-deciding `prefetch_slots` every epoch.
            for (i, c) in cores.iter_mut().enumerate() {
                c.set_prefetch_degree(((i + k) % (cpusim::prefetch::MAX_DEGREE + 1)) as u8);
            }
        }
        EpochControl::Continue
    });
    let stats = |c: &memsim::CacheStats| {
        (
            c.read_accesses.get(),
            c.write_accesses.get(),
            c.misses.get(),
            c.writebacks.get(),
        )
    };
    Snapshot {
        retired: cores.iter().map(|c| c.retired()).collect(),
        loads: cores.iter().map(|c| c.stats().loads.get()).collect(),
        stores: cores.iter().map(|c| c.stats().stores.get()).collect(),
        redirect_cycles: cores
            .iter()
            .map(|c| c.stats().redirect_cycles.get())
            .collect(),
        l1d: cores.iter().map(|c| stats(c.l1d_stats())).collect(),
        l1i: cores.iter().map(|c| stats(c.l1i_stats())).collect(),
        branches: cores
            .iter()
            .map(|c| {
                (
                    c.branch_stats().branches.get(),
                    c.branch_stats().mispredictions.get(),
                )
            })
            .collect(),
        finish: finish.iter().map(|f| f.map(Cycle::raw)).collect(),
        epochs,
        end: stepper.now().raw(),
        prefetch: cores
            .iter()
            .map(|c| {
                (
                    c.stats().prefetches.get(),
                    c.stats().prefetch_useful.get(),
                    c.stats().prefetch_late.get(),
                    c.stats().prefetch_dropped.get(),
                )
            })
            .collect(),
        llc_log: llc.log,
        llc_wb: llc.wb,
        llc_pf: llc.pf,
    }
}

/// First field-level divergence, for a readable failure instead of two
/// multi-thousand-entry debug dumps.
fn first_diff(a: &Snapshot, b: &Snapshot) -> String {
    macro_rules! check {
        ($f:ident) => {
            if a.$f != b.$f {
                return format!(
                    "{}: reference {:?} vs event-driven {:?}",
                    stringify!($f),
                    a.$f,
                    b.$f
                );
            }
        };
    }
    check!(retired);
    check!(loads);
    check!(stores);
    check!(redirect_cycles);
    check!(l1d);
    check!(l1i);
    check!(branches);
    check!(finish);
    check!(epochs);
    check!(end);
    check!(prefetch);
    for (seq, aa, bb) in [
        ("llc access", a.llc_log.len(), b.llc_log.len()),
        ("llc writeback", a.llc_wb.len(), b.llc_wb.len()),
        ("llc prefetch", a.llc_pf.len(), b.llc_pf.len()),
    ] {
        if aa != bb {
            return format!("{seq} count: {aa} vs {bb}");
        }
    }
    if let Some(i) = (0..a.llc_log.len()).find(|&i| a.llc_log[i] != b.llc_log[i]) {
        return format!("llc access {i}: {:?} vs {:?}", a.llc_log[i], b.llc_log[i]);
    }
    if let Some(i) = (0..a.llc_wb.len()).find(|&i| a.llc_wb[i] != b.llc_wb[i]) {
        return format!("llc writeback {i}: {:?} vs {:?}", a.llc_wb[i], b.llc_wb[i]);
    }
    if let Some(i) = (0..a.llc_pf.len()).find(|&i| a.llc_pf[i] != b.llc_pf[i]) {
        return format!("llc prefetch {i}: {:?} vs {:?}", a.llc_pf[i], b.llc_pf[i]);
    }
    "identical".into()
}

const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A random but deterministic mixed-flavour trace for [`TraceSource`].
fn gen_trace(seed: u64, len: usize) -> Vec<Instr> {
    let mut s = SynthSource::new(seed, 0, 4);
    (0..len).map(|_| s.next_instr()).collect()
}

proptest! {
    #[test]
    fn event_driven_matches_reference_synthetic(
        seed in any::<u64>(),
        sel in 0usize..4,
        flavor in 0u8..5,
    ) {
        let n = CORE_COUNTS[sel];
        let mk = |i: usize| -> Box<dyn InstrSource + Send> {
            Box::new(SynthSource::new(seed, i, flavor))
        };
        let a = run_snapshot(StepperKind::Reference, n, &mk, false, false);
        let b = run_snapshot(StepperKind::EventDriven, n, &mk, false, false);
        prop_assert!(
            a == b,
            "n={n} flavor={flavor}: {}", first_diff(&a, &b)
        );
    }

    #[test]
    fn event_driven_matches_reference_under_dvfs(
        seed in any::<u64>(),
        sel in 0usize..4,
        flavor in 0u8..5,
    ) {
        let n = CORE_COUNTS[sel];
        let mk = |i: usize| -> Box<dyn InstrSource + Send> {
            Box::new(SynthSource::new(seed, i, flavor))
        };
        let a = run_snapshot(StepperKind::Reference, n, &mk, true, false);
        let b = run_snapshot(StepperKind::EventDriven, n, &mk, true, false);
        prop_assert!(
            a == b,
            "n={n} flavor={flavor} dvfs: {}", first_diff(&a, &b)
        );
    }

    /// Prefetcher determinism under the seeded RNG: with per-epoch degree
    /// rotation (0..=MAX_DEGREE) the two steppers agree bit for bit on
    /// retired counts, every prefetch counter, and the interleaved
    /// demand/prefetch/writeback sequences at the LLC.
    #[test]
    fn event_driven_matches_reference_with_prefetching(
        seed in any::<u64>(),
        sel in 0usize..4,
        flavor in 0u8..5,
        dvfs in any::<bool>(),
    ) {
        let n = CORE_COUNTS[sel];
        let mk = |i: usize| -> Box<dyn InstrSource + Send> {
            Box::new(SynthSource::new(seed, i, flavor))
        };
        let a = run_snapshot(StepperKind::Reference, n, &mk, dvfs, true);
        let b = run_snapshot(StepperKind::EventDriven, n, &mk, dvfs, true);
        prop_assert!(
            a == b,
            "n={n} flavor={flavor} dvfs={dvfs} prefetch: {}", first_diff(&a, &b)
        );
    }

    #[test]
    fn event_driven_matches_reference_on_trace_replay(
        seed in any::<u64>(),
        sel in 0usize..4,
        len in 16usize..200,
    ) {
        let n = CORE_COUNTS[sel];
        let mk = |i: usize| -> Box<dyn InstrSource + Send> {
            let instrs = Arc::new(gen_trace(seed ^ ((i as u64 + 1) << 40), len));
            Box::new(TraceSource::new(instrs).expect("non-empty trace"))
        };
        let a = run_snapshot(StepperKind::Reference, n, &mk, true, true);
        let b = run_snapshot(StepperKind::EventDriven, n, &mk, true, true);
        prop_assert!(
            a == b,
            "n={n} len={len} trace: {}", first_diff(&a, &b)
        );
    }

    /// The [`cpusim::StepOutcome`] wake-list contract, stepped directly:
    /// every outcome's wake is strictly in the future; after a
    /// non-progressing step, *every* cycle before the advertised wake is
    /// an observable no-op that re-advertises the same wake (stability).
    #[test]
    fn step_contract_progress_or_stable_future_wake(
        seed in any::<u64>(),
        flavor in 0u8..5,
        ratio_sel in 0usize..4,
    ) {
        let mut core = Core::new(
            CoreId(0),
            CoreConfig::default(),
            Box::new(SynthSource::new(seed, 0, flavor)),
        );
        core.set_clock_ratio(Cycle::ZERO, RATIOS[ratio_sel]);
        let mut llc = RecordingLlc::default();
        let mut now = Cycle::ZERO;
        for _ in 0..800 {
            if now >= Cycle(100_000) {
                break;
            }
            let out = core.step(now, &mut llc);
            prop_assert!(
                out.next_event > now,
                "seed={seed:#x} flavor={flavor} ratio={}: wake {:?} not strictly after {now:?}",
                RATIOS[ratio_sel], out.next_event
            );
            prop_assert_eq!(
                core.wake_hint(now), out.next_event,
                "wake_hint must reproduce the advertised wake at {:?}", now
            );
            if !out.progressed {
                let retired = core.retired();
                let accesses = llc.log.len();
                let mut t = now + 1;
                while t < out.next_event {
                    let mid = core.step(t, &mut llc);
                    prop_assert!(
                        !mid.progressed,
                        "progress at {t:?} inside advertised gap ({now:?}, {:?})",
                        out.next_event
                    );
                    prop_assert_eq!(
                        mid.next_event, out.next_event,
                        "seed={:#x} flavor={} ratio={}: unstable wake at {:?} (stepped at {:?})",
                        seed, flavor, RATIOS[ratio_sel], t, now
                    );
                    t += 1;
                }
                prop_assert_eq!(core.retired(), retired, "gap steps retired instructions");
                prop_assert_eq!(llc.log.len(), accesses, "gap steps reached the LLC");
            }
            now = out.next_event;
        }
    }
}

/// Satellite pin for the epoch-anchor fix: a stall-heavy pointer-chasing
/// run whose wakes jump hundreds of cycles past every boundary must still
/// fire its epoch callback at *exactly* `k * epoch_cycles` for every k —
/// `next_epoch += epoch_cycles` never drifts off the grid, and the count
/// is the floor of elapsed time over the epoch length.
#[test]
fn epoch_grid_is_exact_for_stall_heavy_runs() {
    let mut cores = vec![Core::new(
        CoreId(0),
        CoreConfig::default(),
        Box::new(SynthSource::new(0xC0FFEE, 0, 2)),
    )];
    let mut llc = RecordingLlc::default();
    let mut stepper = SystemStepper::new(StepperKind::EventDriven, 5_000);
    let mut fired: Vec<u64> = Vec::new();
    stepper.run(
        &mut cores,
        &mut llc,
        &[1_500],
        Cycle(400_000),
        |now, _, _| {
            fired.push(now.raw());
            EpochControl::Continue
        },
    );
    let end = stepper.now().raw();
    assert!(
        fired.len() >= 10,
        "stall-heavy run should span many epochs, fired {} (end {end})",
        fired.len()
    );
    for (k, &cycle) in fired.iter().enumerate() {
        assert_eq!(
            cycle,
            (k as u64 + 1) * 5_000,
            "epoch {k} fired off the 5000-cycle grid"
        );
    }
    assert_eq!(
        fired.len() as u64,
        end / 5_000,
        "one firing per elapsed epoch"
    );
    assert_eq!(
        stepper.next_epoch().raw(),
        (fired.len() as u64 + 1) * 5_000,
        "anchor advances one epoch per firing"
    );
}

/// `inspect` drives one epoch per `run()` call by returning `Stop`; the
/// sliced timeline must match a single continuous run bit for bit (the
/// stepper persists `now`, the epoch anchor and the wake list).
#[test]
fn stop_and_reenter_matches_continuous_run() {
    let build = || -> (Vec<Core>, RecordingLlc) {
        let cores = (0..2)
            .map(|i| {
                Core::new(
                    CoreId(i as u8),
                    CoreConfig::default(),
                    Box::new(SynthSource::new(0xF00D, i, 4)) as Box<dyn InstrSource + Send>,
                )
            })
            .collect();
        (cores, RecordingLlc::default())
    };
    let targets = [u64::MAX, u64::MAX];
    let epochs = 5u32;

    let (mut cores_a, mut llc_a) = build();
    let mut stepper_a = SystemStepper::new(StepperKind::EventDriven, EPOCH);
    let mut k = 0u32;
    stepper_a.run(
        &mut cores_a,
        &mut llc_a,
        &targets,
        Cycle(u64::MAX),
        |_, _, _| {
            k += 1;
            if k == epochs {
                EpochControl::Stop
            } else {
                EpochControl::Continue
            }
        },
    );

    let (mut cores_b, mut llc_b) = build();
    let mut stepper_b = SystemStepper::new(StepperKind::EventDriven, EPOCH);
    for _ in 0..epochs {
        stepper_b.run(
            &mut cores_b,
            &mut llc_b,
            &targets,
            Cycle(u64::MAX),
            |_, _, _| EpochControl::Stop,
        );
    }

    assert_eq!(stepper_a.now(), stepper_b.now());
    assert_eq!(stepper_a.next_epoch(), stepper_b.next_epoch());
    for (a, b) in cores_a.iter().zip(cores_b.iter()) {
        assert_eq!(a.retired(), b.retired());
    }
    assert_eq!(llc_a.log, llc_b.log);
    assert_eq!(llc_a.wb, llc_b.wb);
}
