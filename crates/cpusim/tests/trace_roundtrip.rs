//! Property tests for the `.ctrace` trace-file format: any canonical
//! instruction stream survives a write→parse round trip bit-identically
//! (both encodings), and malformed inputs come back as errors, never
//! panics.

use cpusim::trace::{
    decode_trace, encode_trace, format_trace_text, parse_trace, parse_trace_text, TraceError,
    TRACE_MAGIC, TRACE_RECORD_BYTES,
};
use cpusim::{Instr, InstrKind};
use proptest::prelude::*;

/// Strategy: one canonical instruction (fields meaningless for the kind
/// are zeroed, exactly as the [`Instr`] constructors produce them).
fn instr() -> impl Strategy<Value = Instr> {
    (0u8..4, any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(kind, pc, addr, flag)| match kind {
            0 => Instr::alu(pc),
            1 => {
                let mut i = Instr::load(pc, addr);
                i.dep_prev_load = flag;
                i
            }
            2 => Instr::store(pc, addr),
            _ => Instr::branch(pc, flag),
        },
    )
}

fn stream() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(instr(), 1..200)
}

proptest! {
    #[test]
    fn binary_roundtrip_preserves_every_instr(instrs in stream()) {
        let bytes = encode_trace(&instrs);
        prop_assert_eq!(parse_trace(&bytes).expect("well-formed binary"), instrs);
    }

    #[test]
    fn text_roundtrip_preserves_every_instr(instrs in stream()) {
        let text = format_trace_text(&instrs);
        prop_assert_eq!(parse_trace(text.as_bytes()).expect("well-formed text"), instrs);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic(instrs in stream(), cut in 1usize..TRACE_RECORD_BYTES) {
        let mut bytes = encode_trace(&instrs);
        bytes.truncate(bytes.len() - cut);
        prop_assert_eq!(
            decode_trace(&bytes).expect_err("cut mid-record"),
            TraceError::Truncated { record: instrs.len() - 1 }
        );
    }

    #[test]
    fn bad_kind_tags_are_an_error(instrs in stream(), tag in 4u8..255, at in any::<usize>()) {
        let at = at % instrs.len();
        let mut bytes = encode_trace(&instrs);
        bytes[TRACE_MAGIC.len() + at * TRACE_RECORD_BYTES] = tag;
        prop_assert_eq!(
            decode_trace(&bytes).expect_err("bad tag"),
            TraceError::BadKind { record: at, tag }
        );
    }

    #[test]
    fn arbitrary_text_never_panics(bytes in proptest::collection::vec(0u8..96, 0..400)) {
        // Printable ASCII + newlines. Any outcome is fine; the parser must
        // just not panic, and a successful parse must yield only canonical
        // records.
        let text: String = bytes
            .iter()
            .map(|&b| if b == 95 { '\n' } else { (b + 32) as char })
            .collect();
        if let Ok(instrs) = parse_trace_text(&text) {
            for i in instrs {
                if i.kind == InstrKind::Alu || i.kind == InstrKind::Branch {
                    prop_assert_eq!(i.addr, 0);
                }
            }
        }
    }
}
