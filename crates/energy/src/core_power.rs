//! Voltage-scaled core power for the coordinated DVFS subsystem.
//!
//! The LLC model in [`crate::params`] charges the cache; this module charges
//! the cores, which is where DVFS earns its savings. Scaling laws (standard
//! first-order CMOS, documented per method):
//!
//! * **dynamic** energy per instruction scales with `V²` (switched
//!   capacitance `C·V²` per event; the *rate* scales with `f` but the
//!   per-instruction energy does not);
//! * **static** (leakage) power scales superlinearly with supply voltage —
//!   we use `V³`, a common fit for subthreshold + gate leakage across the
//!   narrow DVFS voltage range at 45 nm.
//!
//! Magnitudes are representative of a 45 nm out-of-order core at 2 GHz
//! (~2 W dynamic at IPC 1, ~0.5 W leakage), the same "plausible but not
//! calibrated" stance the LLC parameters take. Every result the `dvfs_energy`
//! experiment reports is a *ratio* against the cooperative-partitioning-only
//! baseline at nominal V/f, so the reproduced shapes depend only on the
//! scaling laws, not the absolute joules.

use serde::{Deserialize, Serialize};

/// Per-core energy parameters at the nominal operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEnergyParams {
    /// Dynamic energy per retired instruction at `vdd_nom`, in nJ. A 45 nm
    /// OoO core burning ~2 W of switching power at 2 GHz and IPC ~1 spends
    /// ~1 nJ per instruction.
    pub epi_nj: f64,
    /// Leakage power at `vdd_nom`, in mW (~0.5 W for core + private L1s).
    pub leak_mw: f64,
    /// Nominal supply voltage the magnitudes above are quoted at, in volts.
    pub vdd_nom: f64,
}

impl CoreEnergyParams {
    /// Representative 45 nm high-performance core magnitudes.
    pub fn for_45nm() -> CoreEnergyParams {
        CoreEnergyParams {
            epi_nj: 1.0,
            leak_mw: 500.0,
            vdd_nom: 1.10,
        }
    }

    /// Dynamic energy per instruction at supply voltage `vdd`, in nJ
    /// (`E_dyn ∝ V²`).
    pub fn dynamic_nj_per_instr(&self, vdd: f64) -> f64 {
        let v = vdd / self.vdd_nom;
        self.epi_nj * v * v
    }

    /// Leakage power at supply voltage `vdd`, in mW (`P_leak ∝ V³`).
    pub fn static_mw(&self, vdd: f64) -> f64 {
        let v = vdd / self.vdd_nom;
        self.leak_mw * v * v * v
    }

    /// Leakage energy over `ns` nanoseconds at `vdd`, in nJ.
    pub fn static_nj(&self, vdd: f64, ns: f64) -> f64 {
        // mW * ns = pJ; /1000 -> nJ.
        self.static_mw(vdd) * ns / 1000.0
    }
}

impl Default for CoreEnergyParams {
    fn default() -> Self {
        CoreEnergyParams::for_45nm()
    }
}

/// Evaluated core energies in nanojoules (summed over all cores).
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreEnergyReport {
    /// Switching energy of retired instructions.
    pub dynamic_nj: f64,
    /// Leakage energy over the wall-clock window.
    pub static_nj: f64,
}

impl CoreEnergyReport {
    /// Total core energy.
    pub fn total_nj(&self) -> f64 {
        self.dynamic_nj + self.static_nj
    }

    /// Element-wise sum (for aggregating across cores or windows).
    pub fn merged(self, other: CoreEnergyReport) -> CoreEnergyReport {
        CoreEnergyReport {
            dynamic_nj: self.dynamic_nj + other.dynamic_nj,
            static_nj: self.static_nj + other.static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_point_is_identity() {
        let p = CoreEnergyParams::for_45nm();
        assert!((p.dynamic_nj_per_instr(p.vdd_nom) - p.epi_nj).abs() < 1e-12);
        assert!((p.static_mw(p.vdd_nom) - p.leak_mw).abs() < 1e-12);
    }

    #[test]
    fn dynamic_scales_quadratically() {
        let p = CoreEnergyParams::for_45nm();
        let half = p.dynamic_nj_per_instr(p.vdd_nom / 2.0);
        assert!((half / p.epi_nj - 0.25).abs() < 1e-12);
    }

    #[test]
    fn static_scales_cubically() {
        let p = CoreEnergyParams::for_45nm();
        let half = p.static_mw(p.vdd_nom / 2.0);
        assert!((half / p.leak_mw - 0.125).abs() < 1e-12);
    }

    #[test]
    fn static_energy_unit_conversion() {
        let p = CoreEnergyParams {
            epi_nj: 1.0,
            leak_mw: 1000.0, // 1 W
            vdd_nom: 1.0,
        };
        // 1 W over 1 us = 1 uJ = 1000 nJ.
        assert!((p.static_nj(1.0, 1000.0) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn report_merge_and_total() {
        let a = CoreEnergyReport {
            dynamic_nj: 1.0,
            static_nj: 2.0,
        };
        let m = a.merged(a);
        assert_eq!(m.total_nj(), 6.0);
    }

    #[test]
    fn lower_operating_point_saves_energy_per_instruction() {
        // The 1.2 GHz / 0.90 V point of the paper's table: dynamic falls by
        // (0.90/1.10)^2 ≈ 0.67 even though the instruction count is fixed.
        let p = CoreEnergyParams::for_45nm();
        let low = p.dynamic_nj_per_instr(0.90);
        assert!(low < 0.70 * p.epi_nj && low > 0.60 * p.epi_nj, "{low}");
    }
}
