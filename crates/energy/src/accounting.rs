//! Raw energy-relevant event counts and the evaluated report.

use serde::{Deserialize, Serialize};

/// Raw event counts accumulated by the LLC during a run.
///
/// The simulator counts *events*; joules appear only when
/// [`crate::EnergyParams::evaluate`] is applied, keeping the simulation
/// independent of any particular technology point.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounts {
    /// Σ over accesses of the number of tag ways consulted.
    pub tag_way_probes: u64,
    /// Data-array reads (hits serving loads/instruction fills, and
    /// write-back readouts).
    pub data_reads: u64,
    /// Data-array writes (fills and store merges).
    pub data_writes: u64,
    /// UMON shadow-tag probes (sampled sets only).
    pub umon_probes: u64,
    /// Takeover bit-vector read-modify-writes.
    pub vector_accesses: u64,
    /// Integral over time of powered-on ways (way·cycles).
    pub on_way_cycles: u64,
    /// Integral over time of gated-off ways (way·cycles).
    pub gated_way_cycles: u64,
    /// Total simulated cycles (for always-on monitor overhead leakage).
    pub total_cycles: u64,
}

impl EnergyCounts {
    /// Element-wise sum (for aggregating across epochs or runs).
    pub fn merged(self, other: EnergyCounts) -> EnergyCounts {
        EnergyCounts {
            tag_way_probes: self.tag_way_probes + other.tag_way_probes,
            data_reads: self.data_reads + other.data_reads,
            data_writes: self.data_writes + other.data_writes,
            umon_probes: self.umon_probes + other.umon_probes,
            vector_accesses: self.vector_accesses + other.vector_accesses,
            on_way_cycles: self.on_way_cycles + other.on_way_cycles,
            gated_way_cycles: self.gated_way_cycles + other.gated_way_cycles,
            total_cycles: self.total_cycles + other.total_cycles,
        }
    }
}

/// Evaluated energies in nanojoules.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Reported *dynamic* energy: tag probes + monitoring overheads. This is
    /// the quantity the paper's dynamic-energy figures plot.
    pub dynamic_nj: f64,
    /// Tag-probe component of `dynamic_nj`.
    pub tag_nj: f64,
    /// Monitoring-overhead component of `dynamic_nj` (UMON + bit vectors).
    pub overhead_nj: f64,
    /// Data-array energy (identical across schemes to first order; tracked
    /// separately, not part of the paper's tag-side dynamic metric).
    pub data_nj: f64,
    /// Leakage energy, including gated residual and monitor overhead.
    pub static_nj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnergyParams;

    #[test]
    fn merged_adds_fields() {
        let a = EnergyCounts {
            tag_way_probes: 1,
            data_reads: 2,
            data_writes: 3,
            umon_probes: 4,
            vector_accesses: 5,
            on_way_cycles: 6,
            gated_way_cycles: 7,
            total_cycles: 8,
        };
        let m = a.merged(a);
        assert_eq!(m.tag_way_probes, 2);
        assert_eq!(m.total_cycles, 16);
        assert_eq!(m.gated_way_cycles, 14);
    }

    #[test]
    fn report_components_sum() {
        let p = EnergyParams::for_llc(2 << 20, 8);
        let c = EnergyCounts {
            tag_way_probes: 100,
            umon_probes: 10,
            vector_accesses: 10,
            data_reads: 5,
            data_writes: 5,
            on_way_cycles: 1000,
            gated_way_cycles: 1000,
            total_cycles: 2000,
        };
        let r = p.evaluate(&c);
        assert!((r.dynamic_nj - (r.tag_nj + r.overhead_nj)).abs() < 1e-12);
        assert!(r.data_nj > 0.0);
        assert!(r.static_nj > 0.0);
    }

    #[test]
    fn dynamic_energy_tracks_ways_consulted_ratio() {
        // The paper's headline: Unmanaged (8 ways probed) uses ~2x the
        // dynamic energy of Fair Share (4 ways probed), at equal accesses.
        let p = EnergyParams::for_llc(2 << 20, 8);
        let accesses = 1_000_000u64;
        let unmanaged = EnergyCounts {
            tag_way_probes: 8 * accesses,
            ..EnergyCounts::default()
        };
        let fair = EnergyCounts {
            tag_way_probes: 4 * accesses,
            ..EnergyCounts::default()
        };
        let ratio = p.evaluate(&unmanaged).dynamic_nj / p.evaluate(&fair).dynamic_nj;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
