//! Energy parameters (CACTI-5.1-like magnitudes at 45 nm).

use serde::{Deserialize, Serialize};

use crate::accounting::{EnergyCounts, EnergyReport};

/// Per-event energies and leakage powers for one LLC configuration.
///
/// Defaults are derived from published CACTI 5.1 45 nm outputs for multi-MB
/// SRAM caches with serial tag/data access; see field docs. Use
/// [`EnergyParams::for_llc`] to scale them to a given cache size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Energy per tag-way probe, in nJ. Serial access probes the tag arrays
    /// of every consulted way; ~0.011 nJ/way for a 2 MB 8-way cache.
    pub tag_probe_nj_per_way: f64,
    /// Energy per data-array read (one way's data subarray), in nJ.
    pub data_read_nj: f64,
    /// Energy per data-array write, in nJ.
    pub data_write_nj: f64,
    /// Leakage power of one powered-on way, in mW (≈0.147 mW/kB at 45 nm
    /// high-performance SRAM; a 256 kB way leaks ≈ 37.5 mW).
    pub leak_mw_per_way: f64,
    /// Residual leakage fraction of a gated-Vdd way (Powell et al. report
    /// ~97% leakage elimination; we keep 3% residual).
    pub gated_residual: f64,
    /// Core clock in GHz (converts cycles to seconds for leakage).
    pub clock_ghz: f64,
    /// Energy per UMON shadow-tag probe, in nJ (small sampled ATD).
    pub umon_probe_nj: f64,
    /// Energy per takeover-bit-vector read-modify-write, in nJ.
    pub vector_access_nj: f64,
    /// Extra always-on leakage for the monitoring hardware (UMON ATDs,
    /// RAP/WAP registers, bit vectors), as a fraction of one way's leakage.
    pub monitor_leak_ways: f64,
}

impl EnergyParams {
    /// Parameters for an LLC of `size_bytes` with `ways` ways.
    ///
    /// Tag energy grows mildly with capacity (longer bitlines); leakage is
    /// proportional to powered capacity. The 2 MB/8-way and 4 MB/16-way
    /// paper configurations land on ≈0.011 and ≈0.013 nJ per tag-way probe.
    pub fn for_llc(size_bytes: u64, ways: usize) -> EnergyParams {
        let mb = size_bytes as f64 / (1 << 20) as f64;
        let way_kb = size_bytes as f64 / 1024.0 / ways as f64;
        EnergyParams {
            tag_probe_nj_per_way: 0.011 * (mb / 2.0).sqrt(),
            data_read_nj: 0.38 * (mb / 2.0).sqrt(),
            data_write_nj: 0.41 * (mb / 2.0).sqrt(),
            leak_mw_per_way: 0.1465 * way_kb,
            gated_residual: 0.03,
            clock_ghz: 2.0,
            umon_probe_nj: 0.002,
            vector_access_nj: 0.0005,
            monitor_leak_ways: 0.02,
        }
    }

    /// Leakage energy of one way over one clock cycle, in nJ.
    pub fn leak_nj_per_way_cycle(&self) -> f64 {
        // P[mW] * t[ns] = pJ; /1000 -> nJ. One cycle is 1/clock_ghz ns.
        self.leak_mw_per_way / self.clock_ghz / 1000.0
    }

    /// Converts raw event counts into an energy report.
    pub fn evaluate(&self, counts: &EnergyCounts) -> EnergyReport {
        let tag_nj = counts.tag_way_probes as f64 * self.tag_probe_nj_per_way;
        let overhead_nj = counts.umon_probes as f64 * self.umon_probe_nj
            + counts.vector_accesses as f64 * self.vector_access_nj;
        let data_nj = counts.data_reads as f64 * self.data_read_nj
            + counts.data_writes as f64 * self.data_write_nj;
        let leak_way_cycle = self.leak_nj_per_way_cycle();
        let static_nj = (counts.on_way_cycles as f64
            + counts.gated_way_cycles as f64 * self.gated_residual
            + counts.total_cycles as f64 * self.monitor_leak_ways)
            * leak_way_cycle;
        EnergyReport {
            dynamic_nj: tag_nj + overhead_nj,
            tag_nj,
            overhead_nj,
            data_nj,
            static_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_have_sensible_magnitudes() {
        let two = EnergyParams::for_llc(2 << 20, 8);
        let four = EnergyParams::for_llc(4 << 20, 16);
        assert!((two.tag_probe_nj_per_way - 0.011).abs() < 1e-9);
        assert!(four.tag_probe_nj_per_way > two.tag_probe_nj_per_way);
        // Both configs have 256 kB ways -> identical per-way leakage.
        assert!((two.leak_mw_per_way - four.leak_mw_per_way).abs() < 1e-9);
        assert!(two.leak_mw_per_way > 30.0 && two.leak_mw_per_way < 45.0);
    }

    #[test]
    fn leakage_unit_conversion() {
        let p = EnergyParams::for_llc(2 << 20, 8);
        // ~37.5 mW per way at 2 GHz -> 0.01875 nJ per way-cycle.
        let nj = p.leak_nj_per_way_cycle();
        assert!((nj - 0.01875).abs() < 2e-3, "got {nj}");
    }

    #[test]
    fn evaluate_scales_linearly_with_probes() {
        let p = EnergyParams::for_llc(2 << 20, 8);
        let base = EnergyCounts {
            tag_way_probes: 1000,
            ..EnergyCounts::default()
        };
        let double = EnergyCounts {
            tag_way_probes: 2000,
            ..EnergyCounts::default()
        };
        let a = p.evaluate(&base);
        let b = p.evaluate(&double);
        assert!((b.dynamic_nj / a.dynamic_nj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gated_ways_leak_residually() {
        let p = EnergyParams::for_llc(2 << 20, 8);
        let on = EnergyCounts {
            on_way_cycles: 1_000_000,
            ..EnergyCounts::default()
        };
        let gated = EnergyCounts {
            gated_way_cycles: 1_000_000,
            ..EnergyCounts::default()
        };
        let e_on = p.evaluate(&on).static_nj;
        let e_gated = p.evaluate(&gated).static_nj;
        assert!((e_gated / e_on - p.gated_residual).abs() < 1e-9);
    }
}
