//! # energy — CACTI-45nm-style energy model
//!
//! The paper obtains cache energy numbers from CACTI 5.1 at 45 nm and reports
//! (Figures 6/7/9/10/12/13):
//!
//! * **dynamic energy** — tag-side only, because the LLC uses serial
//!   tag-then-data access ("we assume accesses are serial. Therefore dynamic
//!   energy savings come from the tag side only", Section 2). It scales with
//!   the number of *ways consulted per access*, which is what the
//!   partitioning schemes change.
//! * **static energy** — leakage, scaling with the number of *powered-on
//!   way-cycles*; unallocated ways are gated with Powell's gated-Vdd
//!   (non-state-preserving, near-zero residual leakage).
//!
//! CACTI itself is not available in this environment, so [`EnergyParams`]
//! embeds representative 45 nm magnitudes (documented per field) derived from
//! published CACTI 5.1 outputs for caches of this size. Because every result
//! in the paper is *normalized to the Fair Share scheme*, the reproduced
//! shapes depend only on the ratios of ways-consulted and way-cycles-on,
//! which the simulator measures exactly; the absolute joule figures are
//! plausible but not calibrated to the authors' testbed.
//!
//! The simulator produces raw [`EnergyCounts`]; [`EnergyParams::evaluate`]
//! turns them into an [`EnergyReport`]. All overhead circuitry the paper
//! charges (UMON probes, takeover bit-vector accesses, monitor leakage) is
//! included.

//! Core-side power for the coordinated DVFS subsystem (`coop-dvfs`) lives
//! in [`core_power`]: voltage-scaled per-instruction dynamic energy and
//! leakage for the cores themselves, reported separately from the LLC.

pub mod accounting;
pub mod core_power;
pub mod params;

pub use accounting::{EnergyCounts, EnergyReport};
pub use core_power::{CoreEnergyParams, CoreEnergyReport};
pub use params::EnergyParams;
