//! Worker-side protocol loop.
//!
//! A worker process (`repro worker`) reads [`ToWorker`] messages from
//! stdin, runs each assigned shard cell by cell through a [`CellRunner`],
//! and streams [`FromWorker`] messages to stdout: heartbeats while
//! computing, one `cell_done` per finished cell (so the orchestrator can
//! persist results as they land — a worker death mid-shard loses only the
//! unfinished cells), and `shard_done` when idle again. Diagnostics go to
//! stderr, which the orchestrator passes through.
//!
//! ## Fault injection (test hook)
//!
//! `FLEET_FAIL_SHARD=<target>:<mode>` makes the worker misbehave when a
//! matching shard is assigned, so orchestrator tests can pin retry,
//! timeout and resume behaviour:
//!
//! * `<target>` — a shard ordinal (`1`) or a shard-ID prefix (`ab12`);
//! * `<mode>` — `panic` (die immediately), `panic1` (finish exactly one
//!   cell, then die — exercises mid-shard degradation), or `hang` (stall
//!   silently, without heartbeats — exercises the stall timeout).
//!
//! With `FLEET_FAIL_ONCE=<marker-path>` the fault fires only if the
//! marker file does not exist yet (it is created when firing), so a retry
//! of the same shard succeeds — the bounded-retry path in one run.

// Heartbeat timing needs wall clock and the reader uses detached threads;
// allowlisted here and in simlint's path allowlist.
#![allow(clippy::disallowed_methods)]

use std::io::{BufRead as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cell::CellSpec;
use crate::json::Value;
use crate::protocol::{FromWorker, ToWorker};

/// Executes one cell; implemented by the harness.
pub trait CellRunner {
    /// Runs `cell`, returning the opaque result payload plus the number
    /// of LLC demand accesses it simulated (aggregate-throughput
    /// accounting). `Err` marks the cell failed without killing the
    /// worker.
    fn run_cell(&self, cell: &CellSpec) -> Result<(Value, u64), String>;
}

/// A parsed `FLEET_FAIL_SHARD` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    target: String,
    mode: FaultMode,
    once_marker: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultMode {
    Panic,
    PanicAfterOneCell,
    Hang,
}

impl FaultPlan {
    /// Reads the plan from the environment (`None` when unset).
    ///
    /// # Panics
    ///
    /// Panics on a malformed directive — a typo'd fault injection must
    /// not silently run the real workload.
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("FLEET_FAIL_SHARD").ok()?;
        let plan = FaultPlan::parse(&spec)
            // simlint: allow(panic-policy) -- test-only fault-injection hook; a typo'd directive must fail loud, not run the real workload
            .unwrap_or_else(|e| panic!("bad FLEET_FAIL_SHARD '{spec}': {e}"));
        Some(FaultPlan {
            once_marker: std::env::var("FLEET_FAIL_ONCE").ok(),
            ..plan
        })
    }

    /// Parses `<target>:<mode>`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (target, mode) = spec
            .split_once(':')
            .ok_or("expected <shard-ordinal-or-id-prefix>:<panic|panic1|hang>")?;
        let mode = match mode {
            "panic" => FaultMode::Panic,
            "panic1" => FaultMode::PanicAfterOneCell,
            "hang" => FaultMode::Hang,
            other => return Err(format!("unknown fault mode '{other}'")),
        };
        if target.is_empty() {
            return Err("empty shard target".to_string());
        }
        Ok(FaultPlan {
            target: target.to_string(),
            mode,
            once_marker: None,
        })
    }

    fn matches(&self, shard_id: &str, shard_index: usize) -> bool {
        self.target == shard_index.to_string() || shard_id.starts_with(&self.target)
    }

    /// True when the fault should fire now (consumes the once-marker).
    fn armed(&self, shard_id: &str, shard_index: usize) -> bool {
        if !self.matches(shard_id, shard_index) {
            return false;
        }
        match &self.once_marker {
            None => true,
            Some(path) => {
                if std::path::Path::new(path).exists() {
                    false
                } else {
                    // Marker creation failing means the fault would fire on
                    // every retry; surface that loudly.
                    // simlint: allow(panic-policy) -- test-only fault-injection marker; failing to persist it would loop the fault forever
                    std::fs::write(path, b"fired\n").expect("write FLEET_FAIL_ONCE marker");
                    true
                }
            }
        }
    }
}

fn send(out: &Mutex<std::io::Stdout>, msg: &FromWorker) {
    // simlint: allow(panic-policy) -- lock poisoning means a writer thread already panicked; this worker is lost either way
    let mut out = out.lock().expect("worker stdout");
    // A dead orchestrator pipe is not an error worth a worker backtrace.
    let _ = out.write_all(msg.to_line().as_bytes());
    let _ = out.flush();
}

/// Runs the worker loop until `exit` or stdin EOF. Returns the number of
/// cells computed (mainly for tests; the process usually just exits).
pub fn serve(runner: &dyn CellRunner) -> usize {
    let fault = FaultPlan::from_env();
    let heartbeat_every = Duration::from_millis(
        std::env::var("FLEET_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100),
    );
    let out = Arc::new(Mutex::new(std::io::stdout()));
    let stdin = std::io::stdin();
    send(
        &out,
        &FromWorker::Ready {
            pid: std::process::id(),
        },
    );

    let mut cells_done = 0usize;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let msg = match ToWorker::from_line(&line) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("# worker {}: bad message: {e}", std::process::id());
                continue;
            }
        };
        match msg {
            ToWorker::Exit => break,
            ToWorker::Assign {
                shard_id,
                shard_index,
                cells,
            } => {
                let mut fail_after: Option<usize> = None;
                if let Some(plan) = &fault {
                    if plan.armed(&shard_id, shard_index) {
                        match plan.mode {
                            FaultMode::Panic => {
                                eprintln!(
                                    "# worker: fault injection: panic on shard {shard_index}"
                                );
                                std::process::exit(101);
                            }
                            FaultMode::Hang => {
                                eprintln!("# worker: fault injection: hang on shard {shard_index}");
                                // Stall silently — no heartbeats — until the
                                // orchestrator's stall timeout kills us.
                                loop {
                                    std::thread::sleep(Duration::from_secs(3600));
                                }
                            }
                            FaultMode::PanicAfterOneCell => fail_after = Some(1),
                        }
                    }
                }
                cells_done +=
                    run_shard(runner, &out, &shard_id, &cells, heartbeat_every, fail_after);
                send(
                    &out,
                    &FromWorker::ShardDone {
                        shard_id: shard_id.clone(),
                    },
                );
            }
        }
    }
    cells_done
}

/// Runs one shard's cells, heartbeating from a side thread while each
/// cell computes. Returns how many cells completed.
fn run_shard(
    runner: &dyn CellRunner,
    out: &Arc<Mutex<std::io::Stdout>>,
    shard_id: &str,
    cells: &[CellSpec],
    heartbeat_every: Duration,
    fail_after: Option<usize>,
) -> usize {
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let stop = Arc::clone(&stop);
        let out = Arc::clone(out);
        let shard_id = shard_id.to_string();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                send(
                    &out,
                    &FromWorker::Heartbeat {
                        shard_id: shard_id.clone(),
                    },
                );
                std::thread::sleep(heartbeat_every);
            }
        })
    };

    let mut done = 0usize;
    for cell in cells {
        let started = Instant::now();
        match runner.run_cell(cell) {
            Ok((payload, accesses)) => {
                send(
                    out,
                    &FromWorker::CellDone {
                        shard_id: shard_id.to_string(),
                        cell_id: cell.id(),
                        wall_ms: started.elapsed().as_millis() as u64,
                        accesses,
                        payload,
                    },
                );
                done += 1;
            }
            Err(message) => {
                send(
                    out,
                    &FromWorker::CellError {
                        shard_id: shard_id.to_string(),
                        cell_id: cell.id(),
                        message,
                    },
                );
            }
        }
        if fail_after.is_some_and(|n| done >= n) {
            eprintln!("# worker: fault injection: panic after {done} cell(s)");
            std::process::exit(101);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plans_parse_and_match() {
        let p = FaultPlan::parse("1:panic").expect("parses");
        assert!(p.matches("whatever", 1));
        assert!(!p.matches("whatever", 2));
        let p = FaultPlan::parse("ab12:hang").expect("parses");
        assert!(p.matches("ab12ffff00", 7));
        assert!(!p.matches("ffab12", 7));
        assert_eq!(
            FaultPlan::parse("0:panic1").expect("parses").mode,
            FaultMode::PanicAfterOneCell
        );
        assert!(FaultPlan::parse("nomode").is_err());
        assert!(FaultPlan::parse(":panic").is_err());
        assert!(FaultPlan::parse("1:explode").is_err());
    }

    #[test]
    fn once_marker_arms_exactly_once() {
        let marker = std::env::temp_dir().join(format!("fleet-once-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let plan = FaultPlan {
            target: "0".to_string(),
            mode: FaultMode::Panic,
            once_marker: Some(marker.display().to_string()),
        };
        assert!(plan.armed("s", 0), "first match fires");
        assert!(!plan.armed("s", 0), "second match is disarmed");
        assert!(!plan.armed("s", 1), "non-matching shard never fires");
        let _ = std::fs::remove_file(&marker);
    }
}
