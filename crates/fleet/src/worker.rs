//! Worker-side protocol loop.
//!
//! A worker process (`repro worker`) reads [`ToWorker`] messages from
//! stdin, runs each assigned shard cell by cell through a [`CellRunner`],
//! and streams [`FromWorker`] messages to stdout: heartbeats while
//! computing, one `cell_done` per finished cell (so the orchestrator can
//! persist results as they land — a worker death mid-shard loses only the
//! unfinished cells), and `shard_done` when idle again. Diagnostics go to
//! stderr, which the orchestrator passes through.
//!
//! Cell execution is wrapped in `catch_unwind`: a model panic inside one
//! cell becomes a `cell_error` for that cell, not the death of the worker
//! and the rest of its shard.
//!
//! ## Fault injection
//!
//! The worker consults the [`crate::chaos`] engine (armed via
//! `FLEET_CHAOS=<seed>:<profile>`, or the deprecated
//! `FLEET_FAIL_SHARD`/`FLEET_FAIL_ONCE` shim) at each protocol state:
//! on `assign` it may die, hang silently, or arm a death after one cell
//! (keyed by shard + attempt, so a retry rolls a fresh decision); per
//! cell it may sleep, panic inside the cell (exercising `catch_unwind`),
//! flip a byte of the outgoing `cell_done` line (exercising the payload
//! checksum), or die mid-write of it (exercising mid-shard recovery).

// Heartbeat timing needs wall clock and the reader uses detached threads;
// allowlisted here and in simlint's path allowlist.
#![allow(clippy::disallowed_methods)]

use std::io::{BufRead as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cell::CellSpec;
use crate::chaos::{ChaosEngine, Site, TargetedMode};
use crate::json::Value;
use crate::protocol::{FromWorker, ToWorker};

/// Executes one cell; implemented by the harness.
pub trait CellRunner {
    /// Runs `cell`, returning the opaque result payload plus the number
    /// of LLC demand accesses it simulated (aggregate-throughput
    /// accounting). `Err` marks the cell failed without killing the
    /// worker.
    fn run_cell(&self, cell: &CellSpec) -> Result<(Value, u64), String>;
}

/// Renders a caught panic payload into a one-line message.
pub(crate) fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn send_raw(out: &Mutex<std::io::Stdout>, bytes: &[u8]) {
    // simlint: allow(panic-policy) -- lock poisoning means a writer thread already panicked; this worker is lost either way
    let mut out = out.lock().expect("worker stdout");
    // A dead orchestrator pipe is not an error worth a worker backtrace.
    let _ = out.write_all(bytes);
    let _ = out.flush();
}

fn send(out: &Mutex<std::io::Stdout>, msg: &FromWorker) {
    send_raw(out, msg.to_line().as_bytes());
}

/// Runs the worker loop until `exit` or stdin EOF. Returns the number of
/// cells computed (mainly for tests; the process usually just exits).
pub fn serve(runner: &dyn CellRunner) -> usize {
    let chaos = ChaosEngine::from_env();
    let heartbeat_every = Duration::from_millis(
        std::env::var("FLEET_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100),
    );
    let out = Arc::new(Mutex::new(std::io::stdout()));
    let stdin = std::io::stdin();
    send(
        &out,
        &FromWorker::Ready {
            pid: std::process::id(),
        },
    );

    let mut cells_done = 0usize;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let msg = match ToWorker::from_line(&line) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("# worker {}: bad message: {e}", std::process::id());
                continue;
            }
        };
        match msg {
            ToWorker::Exit => break,
            ToWorker::Assign {
                shard_id,
                shard_index,
                attempt,
                cells,
            } => {
                let mut fail_after: Option<usize> = None;
                if let Some(ch) = &chaos {
                    // Targeted single-shard faults (the regression-test
                    // form / deprecated FLEET_FAIL_SHARD shim).
                    match ch.targeted_mode(&shard_id, shard_index) {
                        Some(TargetedMode::Panic) => {
                            eprintln!("# worker: fault injection: panic on shard {shard_index}");
                            std::process::exit(101);
                        }
                        Some(TargetedMode::Hang) => {
                            eprintln!("# worker: fault injection: hang on shard {shard_index}");
                            hang_forever();
                        }
                        Some(TargetedMode::PanicAfterOneCell) => fail_after = Some(1),
                        None => {}
                    }
                    // Seeded profile faults, keyed by (shard, attempt) so
                    // a retry of the same shard rolls a fresh decision.
                    let key = format!("{shard_id}#{attempt}");
                    if ch.fires(Site::WorkerKill, &key) {
                        eprintln!("# worker: chaos: killed on assign of shard {shard_index}");
                        std::process::exit(101);
                    }
                    if ch.fires(Site::WorkerHang, &key) {
                        eprintln!("# worker: chaos: hanging on shard {shard_index}");
                        hang_forever();
                    }
                    if fail_after.is_none() && ch.fires(Site::WorkerDieAfterCell, &key) {
                        fail_after = Some(1);
                    }
                }
                cells_done += run_shard(
                    runner,
                    &out,
                    &shard_id,
                    attempt,
                    &cells,
                    heartbeat_every,
                    fail_after,
                    chaos.as_ref(),
                );
                send(
                    &out,
                    &FromWorker::ShardDone {
                        shard_id: shard_id.clone(),
                    },
                );
            }
        }
    }
    cells_done
}

/// Stall silently — no heartbeats — until the orchestrator's stall
/// timeout kills us.
fn hang_forever() -> ! {
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Runs one shard's cells, heartbeating from a side thread while each
/// cell computes. Returns how many cells completed.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    runner: &dyn CellRunner,
    out: &Arc<Mutex<std::io::Stdout>>,
    shard_id: &str,
    attempt: usize,
    cells: &[CellSpec],
    heartbeat_every: Duration,
    fail_after: Option<usize>,
    chaos: Option<&ChaosEngine>,
) -> usize {
    let stop = Arc::new(AtomicBool::new(false));
    let beat = {
        let stop = Arc::clone(&stop);
        let out = Arc::clone(out);
        let shard_id = shard_id.to_string();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                send(
                    &out,
                    &FromWorker::Heartbeat {
                        shard_id: shard_id.clone(),
                    },
                );
                std::thread::sleep(heartbeat_every);
            }
        })
    };

    let mut done = 0usize;
    for cell in cells {
        let cell_key = format!("{}#{attempt}", cell.id());
        if let Some(ch) = chaos {
            if ch.fires(Site::WorkerSlow, &cell_key) {
                std::thread::sleep(Duration::from_millis(ch.slow_ms()));
            }
        }
        let started = Instant::now();
        // A model panic must cost one cell, not the worker and the rest
        // of its shard: catch it and report a cell_error instead.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(ch) = chaos {
                if ch.fires(Site::CellPanic, &cell_key) {
                    // simlint: allow(panic-policy) -- chaos-injected model panic, caught by the catch_unwind wrapping this closure
                    panic!("chaos: injected cell panic");
                }
            }
            runner.run_cell(cell)
        }));
        match outcome {
            Ok(Ok((payload, accesses))) => {
                let msg = FromWorker::CellDone {
                    shard_id: shard_id.to_string(),
                    cell_id: cell.id(),
                    wall_ms: started.elapsed().as_millis() as u64,
                    accesses,
                    payload,
                };
                let line = msg.to_line();
                if let Some(ch) = chaos {
                    if ch.fires(Site::TruncateMessage, &cell_key) {
                        // Die mid-write: the orchestrator's reader sees a
                        // torn line (or EOF) and recycles this worker.
                        let cut = ch.truncate_at(&cell_key, line.len());
                        send_raw(out, &line.as_bytes()[..cut]);
                        eprintln!("# worker: chaos: died mid-write of cell_done");
                        std::process::exit(101);
                    }
                    if ch.fires(Site::CorruptMessage, &cell_key) {
                        let mut bad = ch.corrupt_line(&cell_key, line.trim_end());
                        bad.push('\n');
                        send_raw(out, bad.as_bytes());
                        done += 1;
                        continue;
                    }
                }
                send_raw(out, line.as_bytes());
                done += 1;
            }
            Ok(Err(message)) => {
                send(
                    out,
                    &FromWorker::CellError {
                        shard_id: shard_id.to_string(),
                        cell_id: cell.id(),
                        message,
                    },
                );
            }
            Err(panic) => {
                send(
                    out,
                    &FromWorker::CellError {
                        shard_id: shard_id.to_string(),
                        cell_id: cell.id(),
                        message: format!("cell panicked: {}", panic_message(panic)),
                    },
                );
            }
        }
        if fail_after.is_some_and(|n| done >= n) {
            eprintln!("# worker: fault injection: panic after {done} cell(s)");
            std::process::exit(101);
        }
    }
    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        let caught = std::panic::catch_unwind(|| panic!("literal message")).expect_err("panics");
        assert_eq!(panic_message(caught), "literal message");
        let caught = std::panic::catch_unwind(|| {
            let detail = 42;
            panic!("formatted {detail}")
        })
        .expect_err("panics");
        assert_eq!(panic_message(caught), "formatted 42");
    }
}
