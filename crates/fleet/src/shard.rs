//! Shard planning: grouping cells into retry/assignment units.
//!
//! A shard is the unit the orchestrator hands to a worker, retries after a
//! crash, and times out as a whole. Shard IDs are content-hashed from the
//! member cell IDs, so the same cell set partitioned the same way yields
//! the same shard IDs across runs — the fault-injection hook can name a
//! shard by ID (or ordinal) and hit the same work every time.

use crate::cell::{fnv1a, CellSpec};

/// A planned shard: an ordinal (stable within one plan), a content-hashed
/// ID, and the member cells in plan order.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Position in the plan (0-based; stable for a given cell set and
    /// shard count).
    pub index: usize,
    /// Content hash of the member cell IDs (16 hex digits).
    pub id: String,
    /// The member cells.
    pub cells: Vec<CellSpec>,
}

/// Splits `cells` into at most `n_shards` shards by round-robin deal, so
/// early shards and late shards get comparable mixes of cheap and
/// expensive cells. Preserves overall cell order within each shard.
/// Empty shards are never produced.
pub fn plan_shards(cells: &[CellSpec], n_shards: usize) -> Vec<Shard> {
    let n = n_shards.clamp(1, cells.len().max(1));
    let mut buckets: Vec<Vec<CellSpec>> = vec![Vec::new(); n];
    for (i, cell) in cells.iter().enumerate() {
        buckets[i % n].push(cell.clone());
    }
    buckets
        .into_iter()
        .filter(|b| !b.is_empty())
        .enumerate()
        .map(|(index, cells)| Shard {
            index,
            id: shard_id(&cells),
            cells,
        })
        .collect()
}

/// The content-hashed ID of a shard holding exactly `cells`.
pub fn shard_id(cells: &[CellSpec]) -> String {
    let joined: String = cells.iter().map(|c| c.id()).collect::<Vec<_>>().join("+");
    format!("{:016x}", fnv1a(joined.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellSpec;

    fn cells(n: usize) -> Vec<CellSpec> {
        (0..n)
            .map(|i| CellSpec::sweep(&format!("G2-{}", i + 1), "ucp", 2, "quick"))
            .collect()
    }

    #[test]
    fn round_robin_covers_every_cell_once() {
        let cs = cells(7);
        let shards = plan_shards(&cs, 3);
        assert_eq!(shards.len(), 3);
        let mut seen: Vec<String> = shards
            .iter()
            .flat_map(|s| s.cells.iter().map(|c| c.id()))
            .collect();
        seen.sort();
        let mut want: Vec<String> = cs.iter().map(|c| c.id()).collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn shard_ids_are_stable_and_distinct() {
        let cs = cells(6);
        let a = plan_shards(&cs, 2);
        let b = plan_shards(&cs, 2);
        assert_eq!(a[0].id, b[0].id);
        assert_ne!(a[0].id, a[1].id);
        assert_eq!(a[0].index, 0);
        assert_eq!(a[1].index, 1);
    }

    #[test]
    fn degenerate_plans_clamp() {
        assert!(plan_shards(&[], 4).is_empty());
        let one = plan_shards(&cells(2), 0);
        assert_eq!(one.len(), 1, "zero shards clamps to one");
        let many = plan_shards(&cells(2), 99);
        assert_eq!(many.len(), 2, "never more shards than cells");
    }
}
