//! Sweep cells: the independent unit of fleet work.
//!
//! A cell names one simulation the harness knows how to run — a
//! (workload, policy, scale) combination, or a solo baseline — without
//! referencing any harness type, so the fleet layer stays a pure
//! orchestration substrate. Cells carry *stable content-hashed IDs*: the
//! same cell always hashes to the same ID across processes, machines and
//! runs, which is what makes resume (diff the manifest against the done
//! set) and retry (re-issue the same cell) coherent.

use crate::json::{self, Value};

/// What kind of simulation a cell asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CellKind {
    /// A full (workload × policy) sweep cell.
    Sweep,
    /// A solo baseline: one member alone in the `cores`-way system's LLC
    /// geometry (IPC-alone / MPKI / CPE-profile source).
    Solo,
}

impl CellKind {
    fn as_str(self) -> &'static str {
        match self {
            CellKind::Sweep => "sweep",
            CellKind::Solo => "solo",
        }
    }

    fn from_str(s: &str) -> Option<CellKind> {
        match s {
            "sweep" => Some(CellKind::Sweep),
            "solo" => Some(CellKind::Solo),
            _ => None,
        }
    }
}

/// One unit of fleet work.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Sweep cell or solo baseline.
    pub kind: CellKind,
    /// Workload spec (group name, ad-hoc mix, `trace:` path) for sweep
    /// cells; the single member name for solo cells.
    pub workload: String,
    /// Policy registry name (sweep cells; solo baselines run the fixed
    /// solo configuration and keep this empty).
    pub policy: String,
    /// System core count: the workload's arity for sweep cells, and the
    /// LLC-geometry selector for solo cells.
    pub cores: usize,
    /// Scale preset name.
    pub scale: String,
}

impl CellSpec {
    /// A sweep cell.
    pub fn sweep(workload: &str, policy: &str, cores: usize, scale: &str) -> CellSpec {
        CellSpec {
            kind: CellKind::Sweep,
            workload: workload.to_string(),
            policy: policy.to_string(),
            cores,
            scale: scale.to_string(),
        }
    }

    /// A solo-baseline cell.
    pub fn solo(member: &str, cores: usize, scale: &str) -> CellSpec {
        CellSpec {
            kind: CellKind::Solo,
            workload: member.to_string(),
            policy: String::new(),
            cores,
            scale: scale.to_string(),
        }
    }

    /// The canonical text the ID hashes (also a readable debug label).
    pub fn canonical(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.kind.as_str(),
            self.workload,
            self.policy,
            self.cores,
            self.scale
        )
    }

    /// Stable content-hashed cell ID (16 hex digits of FNV-1a over the
    /// canonical form).
    pub fn id(&self) -> String {
        format!("{:016x}", fnv1a(self.canonical().as_bytes()))
    }

    /// Serializes the spec for the protocol and the store.
    pub fn to_value(&self) -> Value {
        json::obj(vec![
            ("kind", json::str(self.kind.as_str())),
            ("workload", json::str(&self.workload)),
            ("policy", json::str(&self.policy)),
            ("cores", json::num_u64(self.cores as u64)),
            ("scale", json::str(&self.scale)),
        ])
    }

    /// Reads a spec back from JSON.
    pub fn from_value(v: &Value) -> Result<CellSpec, String> {
        let field = |k: &str| -> Result<&Value, String> {
            v.get(k).ok_or_else(|| format!("cell spec missing '{k}'"))
        };
        let kind_str = field("kind")?
            .as_str()
            .ok_or("cell 'kind' must be a string")?;
        Ok(CellSpec {
            kind: CellKind::from_str(kind_str)
                .ok_or_else(|| format!("bad cell kind '{kind_str}'"))?,
            workload: field("workload")?
                .as_str()
                .ok_or("cell 'workload' must be a string")?
                .to_string(),
            policy: field("policy")?
                .as_str()
                .ok_or("cell 'policy' must be a string")?
                .to_string(),
            cores: field("cores")?
                .as_usize()
                .ok_or("cell 'cores' must be an integer")?,
            scale: field("scale")?
                .as_str()
                .ok_or("cell 'scale' must be a string")?
                .to_string(),
        })
    }
}

/// FNV-1a, the repo's stable string hash (see `simkit::rng`); duplicated
/// here so the fleet crate stays dependency-free.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Content checksum of a JSON value: 16 hex digits of FNV-1a over its
/// canonical render. The JSON layer keeps objects key-sorted and numbers
/// as raw tokens, so parse → render is byte-stable and a checksum taken
/// at write time verifies bit-exactly at read time. Used by the store
/// (cell files, journal lines) and the protocol (`cell_done` payloads).
pub fn content_sum(v: &Value) -> String {
    format!("{:016x}", fnv1a(v.render().as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_content_addressed() {
        let a = CellSpec::sweep("G2-1", "cooperative", 2, "quick");
        let b = CellSpec::sweep("G2-1", "cooperative", 2, "quick");
        let c = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a.id().len(), 16);
        // Pinned: a changed hash silently orphans every stored result.
        assert_eq!(
            a.id(),
            format!("{:016x}", fnv1a(b"sweep|G2-1|cooperative|2|quick"))
        );
    }

    #[test]
    fn specs_roundtrip_through_json() {
        for spec in [
            CellSpec::sweep("lbm,namd,mcf", "dvfs", 3, "small"),
            CellSpec::solo("soplex", 4, "quick"),
        ] {
            let text = spec.to_value().render();
            let back =
                CellSpec::from_value(&crate::json::parse(&text).expect("json")).expect("spec");
            assert_eq!(back, spec);
            assert_eq!(back.id(), spec.id());
        }
    }

    #[test]
    fn malformed_specs_error() {
        let v = crate::json::parse(
            r#"{"kind":"nope","workload":"x","policy":"","cores":2,"scale":"quick"}"#,
        )
        .expect("json");
        assert!(CellSpec::from_value(&v).is_err());
        let v = crate::json::parse(r#"{"workload":"x"}"#).expect("json");
        assert!(CellSpec::from_value(&v).unwrap_err().contains("kind"));
    }
}
