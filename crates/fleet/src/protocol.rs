//! The line-delimited JSON worker protocol.
//!
//! The orchestrator spawns worker processes (`repro worker`) and speaks
//! NDJSON over their stdin/stdout: one JSON object per line, each carrying
//! a `"type"` tag. Worker stderr passes through untouched for diagnostics.
//!
//! Orchestrator → worker:
//!
//! | type     | fields                                              | meaning          |
//! |----------|-----------------------------------------------------|------------------|
//! | `assign` | `shard_id`, `shard_index`, `attempt`, `cells: [...]`| run this shard   |
//! | `exit`   |                                                     | drain and quit   |
//!
//! Worker → orchestrator:
//!
//! | type         | fields                                        | meaning                    |
//! |--------------|-----------------------------------------------|----------------------------|
//! | `ready`      | `pid`                                         | idle, send work            |
//! | `heartbeat`  | `shard_id`                                    | still computing            |
//! | `cell_done`  | `shard_id`, `cell_id`, `wall_ms`, `accesses`, `payload`, `sum` | one finished cell |
//! | `cell_error` | `shard_id`, `cell_id`, `message`              | cell failed (not retried on this worker) |
//! | `shard_done` | `shard_id`                                    | shard finished, idle again |
//!
//! `attempt` is the shard's 1-based attempt counter: retries of the same
//! shard carry a different attempt, which keys fault-injection schedules
//! (see [`crate::chaos`]) and diagnostics. `sum` is the FNV-1a content
//! checksum of the payload's canonical render ([`content_sum`]); it is
//! verified at parse time, so a flipped byte that still reads as valid
//! JSON is caught here instead of being persisted.
//!
//! Unknown message types are a protocol error — the orchestrator treats
//! the worker as corrupt and recycles it — so the protocol can grow
//! without old orchestrators silently dropping new messages.

use crate::cell::{content_sum, CellSpec};
use crate::json::{self, Value};

/// Messages the orchestrator sends to a worker.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Run this shard.
    Assign {
        /// Content-hashed shard ID.
        shard_id: String,
        /// Shard ordinal in the plan (fault-injection targets may use it).
        shard_index: usize,
        /// 1-based attempt counter for this shard (retries increment it),
        /// so per-attempt fault schedules can fire once and be absorbed.
        attempt: usize,
        /// Member cells.
        cells: Vec<CellSpec>,
    },
    /// Finish up and exit cleanly.
    Exit,
}

impl ToWorker {
    /// One NDJSON line (newline included).
    pub fn to_line(&self) -> String {
        let v = match self {
            ToWorker::Assign {
                shard_id,
                shard_index,
                attempt,
                cells,
            } => json::obj(vec![
                ("type", json::str("assign")),
                ("shard_id", json::str(shard_id)),
                ("shard_index", json::num_u64(*shard_index as u64)),
                ("attempt", json::num_u64(*attempt as u64)),
                (
                    "cells",
                    Value::Arr(cells.iter().map(|c| c.to_value()).collect()),
                ),
            ]),
            ToWorker::Exit => json::obj(vec![("type", json::str("exit"))]),
        };
        let mut line = v.render();
        line.push('\n');
        line
    }

    /// Parses one line.
    pub fn from_line(line: &str) -> Result<ToWorker, String> {
        let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
        match v.get("type").and_then(Value::as_str) {
            Some("assign") => {
                let cells = v
                    .get("cells")
                    .and_then(Value::as_arr)
                    .ok_or("assign without cells")?
                    .iter()
                    .map(CellSpec::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ToWorker::Assign {
                    shard_id: v
                        .get("shard_id")
                        .and_then(Value::as_str)
                        .ok_or("assign without shard_id")?
                        .to_string(),
                    shard_index: v
                        .get("shard_index")
                        .and_then(Value::as_usize)
                        .ok_or("assign without shard_index")?,
                    // Tolerate an orchestrator one release older than the
                    // worker: a missing attempt reads as the first.
                    attempt: v.get("attempt").and_then(Value::as_usize).unwrap_or(1),
                    cells,
                })
            }
            Some("exit") => Ok(ToWorker::Exit),
            Some(other) => Err(format!("unknown orchestrator message '{other}'")),
            None => Err("orchestrator message without a type".to_string()),
        }
    }
}

/// Messages a worker sends to the orchestrator.
#[derive(Debug, Clone)]
pub enum FromWorker {
    /// The worker is idle and wants a shard.
    Ready {
        /// Worker process ID (for the status display).
        pid: u32,
    },
    /// Liveness signal while a shard computes.
    Heartbeat {
        /// The shard being computed.
        shard_id: String,
    },
    /// One cell of the current shard finished.
    CellDone {
        /// The shard being computed.
        shard_id: String,
        /// Content-hashed cell ID.
        cell_id: String,
        /// Wall-clock the cell took on the worker, in milliseconds.
        wall_ms: u64,
        /// LLC demand accesses the cell simulated (aggregate-throughput
        /// accounting).
        accesses: u64,
        /// The harness result payload (opaque to the fleet layer).
        payload: Value,
    },
    /// One cell failed on the worker (bad spec, harness panic caught at
    /// the cell boundary).
    CellError {
        /// The shard being computed.
        shard_id: String,
        /// Content-hashed cell ID.
        cell_id: String,
        /// Human-readable failure description.
        message: String,
    },
    /// The current shard is complete; the worker is idle again.
    ShardDone {
        /// The finished shard.
        shard_id: String,
    },
}

impl FromWorker {
    /// One NDJSON line (newline included).
    pub fn to_line(&self) -> String {
        let v = match self {
            FromWorker::Ready { pid } => json::obj(vec![
                ("type", json::str("ready")),
                ("pid", json::num_u64(*pid as u64)),
            ]),
            FromWorker::Heartbeat { shard_id } => json::obj(vec![
                ("type", json::str("heartbeat")),
                ("shard_id", json::str(shard_id)),
            ]),
            FromWorker::CellDone {
                shard_id,
                cell_id,
                wall_ms,
                accesses,
                payload,
            } => json::obj(vec![
                ("type", json::str("cell_done")),
                ("shard_id", json::str(shard_id)),
                ("cell_id", json::str(cell_id)),
                ("wall_ms", json::num_u64(*wall_ms)),
                ("accesses", json::num_u64(*accesses)),
                ("payload", payload.clone()),
                ("sum", json::str(content_sum(payload))),
            ]),
            FromWorker::CellError {
                shard_id,
                cell_id,
                message,
            } => json::obj(vec![
                ("type", json::str("cell_error")),
                ("shard_id", json::str(shard_id)),
                ("cell_id", json::str(cell_id)),
                ("message", json::str(message)),
            ]),
            FromWorker::ShardDone { shard_id } => json::obj(vec![
                ("type", json::str("shard_done")),
                ("shard_id", json::str(shard_id)),
            ]),
        };
        let mut line = v.render();
        line.push('\n');
        line
    }

    /// Parses one line.
    pub fn from_line(line: &str) -> Result<FromWorker, String> {
        let v = json::parse(line.trim()).map_err(|e| e.to_string())?;
        let shard = |v: &Value| -> Result<String, String> {
            Ok(v.get("shard_id")
                .and_then(Value::as_str)
                .ok_or("message without shard_id")?
                .to_string())
        };
        let cell = |v: &Value| -> Result<String, String> {
            Ok(v.get("cell_id")
                .and_then(Value::as_str)
                .ok_or("message without cell_id")?
                .to_string())
        };
        match v.get("type").and_then(Value::as_str) {
            Some("ready") => Ok(FromWorker::Ready {
                pid: v
                    .get("pid")
                    .and_then(Value::as_u64)
                    .ok_or("ready without pid")? as u32,
            }),
            Some("heartbeat") => Ok(FromWorker::Heartbeat {
                shard_id: shard(&v)?,
            }),
            Some("cell_done") => {
                let payload = v
                    .get("payload")
                    .cloned()
                    .ok_or("cell_done without payload")?;
                let sum = v
                    .get("sum")
                    .and_then(Value::as_str)
                    .ok_or("cell_done without checksum")?;
                if sum != content_sum(&payload) {
                    // A byte flip somewhere on the pipe that still parsed
                    // as JSON; the worker (or its transport) is corrupt.
                    return Err(format!(
                        "cell_done payload checksum mismatch (claimed {sum})"
                    ));
                }
                Ok(FromWorker::CellDone {
                    shard_id: shard(&v)?,
                    cell_id: cell(&v)?,
                    wall_ms: v
                        .get("wall_ms")
                        .and_then(Value::as_u64)
                        .ok_or("cell_done without wall_ms")?,
                    accesses: v
                        .get("accesses")
                        .and_then(Value::as_u64)
                        .ok_or("cell_done without accesses")?,
                    payload,
                })
            }
            Some("cell_error") => Ok(FromWorker::CellError {
                shard_id: shard(&v)?,
                cell_id: cell(&v)?,
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            Some("shard_done") => Ok(FromWorker::ShardDone {
                shard_id: shard(&v)?,
            }),
            Some(other) => Err(format!("unknown worker message '{other}'")),
            None => Err("worker message without a type".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_roundtrips_with_cells() {
        let msg = ToWorker::Assign {
            shard_id: "abcd".to_string(),
            shard_index: 3,
            attempt: 2,
            cells: vec![CellSpec::sweep("G2-1", "ucp", 2, "quick")],
        };
        let line = msg.to_line();
        assert!(line.ends_with('\n'));
        match ToWorker::from_line(&line).expect("parses") {
            ToWorker::Assign {
                shard_id,
                shard_index,
                attempt,
                cells,
            } => {
                assert_eq!(shard_id, "abcd");
                assert_eq!(shard_index, 3);
                assert_eq!(attempt, 2);
                assert_eq!(cells.len(), 1);
                assert_eq!(cells[0].workload, "G2-1");
            }
            other => panic!("wrong message: {other:?}"),
        }
        // One-release tolerance: an assign without attempt reads as the
        // first attempt.
        let legacy = r#"{"cells":[],"shard_id":"s","shard_index":0,"type":"assign"}"#;
        match ToWorker::from_line(legacy).expect("parses") {
            ToWorker::Assign { attempt, .. } => assert_eq!(attempt, 1),
            other => panic!("wrong message: {other:?}"),
        }
        assert!(matches!(
            ToWorker::from_line(&ToWorker::Exit.to_line()),
            Ok(ToWorker::Exit)
        ));
    }

    #[test]
    fn worker_messages_roundtrip() {
        let msgs = vec![
            FromWorker::Ready { pid: 42 },
            FromWorker::Heartbeat {
                shard_id: "s".to_string(),
            },
            FromWorker::CellDone {
                shard_id: "s".to_string(),
                cell_id: "c".to_string(),
                wall_ms: 1234,
                accesses: 99_000,
                payload: json::obj(vec![("ipc", json::arr_f64(&[1.5, 0.25]))]),
            },
            FromWorker::CellError {
                shard_id: "s".to_string(),
                cell_id: "c".to_string(),
                message: "boom".to_string(),
            },
            FromWorker::ShardDone {
                shard_id: "s".to_string(),
            },
        ];
        for m in msgs {
            let line = m.to_line();
            let back = FromWorker::from_line(&line).expect(&line);
            assert_eq!(back.to_line(), line);
        }
    }

    #[test]
    fn unknown_types_are_protocol_errors() {
        assert!(ToWorker::from_line(r#"{"type":"mystery"}"#).is_err());
        assert!(FromWorker::from_line(r#"{"type":"mystery"}"#).is_err());
        assert!(FromWorker::from_line("not json").is_err());
        assert!(FromWorker::from_line(r#"{"no":"type"}"#).is_err());
    }

    #[test]
    fn corrupted_cell_done_payloads_fail_the_checksum() {
        let msg = FromWorker::CellDone {
            shard_id: "s".to_string(),
            cell_id: "c".to_string(),
            wall_ms: 10,
            accesses: 1000,
            payload: json::obj(vec![("ipc", json::arr_f64(&[1.5, 0.25]))]),
        };
        let line = msg.to_line();
        assert!(FromWorker::from_line(&line).is_ok());
        // Flip one digit inside the payload: still valid JSON, but the
        // checksum no longer matches.
        let flipped = line.replace("0.25", "0.35");
        assert_ne!(flipped, line);
        let err = FromWorker::from_line(&flipped).expect_err("checksum must catch the flip");
        assert!(err.contains("checksum"), "{err}");
        // A cell_done without any checksum is equally rejected.
        let stripped = line.replace(r#","sum":""#, r#","nosum":""#);
        assert!(FromWorker::from_line(&stripped).is_err());
    }
}
