//! The durable results store behind `--json DIR`.
//!
//! Layout:
//!
//! ```text
//! DIR/manifest.json          run manifest: what/scale/filters/version + cell IDs
//! DIR/cells/<id>.json        one finished cell: {"payload": ..., "spec": ..., "sum": ...}
//! DIR/cells/quarantine/      cell files that failed verification (kept for forensics)
//! DIR/journal.jsonl          append-only journal, one line per finished cell
//! DIR/<experiment>.json      merged experiment outputs (written by repro)
//! ```
//!
//! The per-cell file is the durable unit (PR 4's JSON output format carried
//! over): a crash after N cells keeps N results. The journal is the fast
//! resume index — `--resume` diffs the manifest's cell set against the
//! journal and re-runs only what is missing — and the manifest is the
//! compatibility gate: a resumed run refuses to mix partial results from a
//! different scale, filter set, sample plan or code version instead of
//! silently merging them.
//!
//! Every cell file and journal line embeds a `"sum"`: the FNV-1a content
//! checksum of its own canonical render minus that field (see
//! [`crate::cell::content_sum`]; the JSON layer's sorted keys and raw
//! number tokens make parse → render byte-stable, so a checksum taken at
//! write time verifies bit-exactly at read time). Verification runs on
//! every resume/merge read: a corrupt cell is **quarantined** to
//! `cells/quarantine/` and recomputed, never silently merged; a damaged
//! journal line is skipped, which simply makes its cell look not-done.
//! [`fsck`] audits manifest ↔ journal ↔ cell-file consistency offline and
//! (with repair) quarantines bad cells and rebuilds the journal from the
//! cell files that still verify.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::cell::{content_sum, CellSpec};
use crate::chaos::{ChaosEngine, Site};
use crate::json::{self, Value};

/// Results-store format version (bump when the cell payload layout
/// changes incompatibly). Format 2 added content checksums to cell files
/// and journal lines; format-1 stores are refused (their cells carry no
/// integrity information, so resuming onto them would reintroduce the
/// blind-trust hole this format closed).
pub const STORE_FORMAT: u64 = 2;

/// The run manifest: everything that must match for partial results to be
/// mergeable.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The repro target (e.g. `"fig5_10"`, `"sample"`).
    pub experiment: String,
    /// Scale preset name.
    pub scale: String,
    /// Canonical policy filter (empty = paper default set).
    pub policies: Vec<String>,
    /// Canonical group filter (empty = all groups).
    pub groups: Vec<String>,
    /// Monte Carlo plan, when sampling: (mix count, RNG seed).
    pub sample: Option<(u64, u64)>,
    /// Code version (git-describe-ish; see [`crate::version_string`]).
    pub version: String,
    /// Sorted IDs of every cell the run needs.
    pub cell_ids: Vec<String>,
    /// Store format version.
    pub format: u64,
}

impl Manifest {
    /// Builds a manifest over `cells` (IDs are sorted for stability).
    pub fn new(
        experiment: &str,
        scale: &str,
        policies: &[String],
        groups: &[String],
        sample: Option<(u64, u64)>,
        version: &str,
        cells: &[CellSpec],
    ) -> Manifest {
        let mut cell_ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        cell_ids.sort();
        cell_ids.dedup();
        Manifest {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            policies: policies.to_vec(),
            groups: groups.to_vec(),
            sample,
            version: version.to_string(),
            cell_ids,
            format: STORE_FORMAT,
        }
    }

    /// Serializes the manifest.
    pub fn to_value(&self) -> Value {
        let strs = |v: &[String]| Value::Arr(v.iter().map(json::str).collect());
        let mut fields = vec![
            ("experiment", json::str(&self.experiment)),
            ("scale", json::str(&self.scale)),
            ("policies", strs(&self.policies)),
            ("groups", strs(&self.groups)),
            ("version", json::str(&self.version)),
            ("cells", strs(&self.cell_ids)),
            ("format", json::num_u64(self.format)),
        ];
        if let Some((n, seed)) = self.sample {
            fields.push((
                "sample",
                json::obj(vec![("n", json::num_u64(n)), ("seed", json::num_u64(seed))]),
            ));
        }
        json::obj(fields)
    }

    /// Parses a manifest.
    pub fn from_value(v: &Value) -> Result<Manifest, String> {
        let strs = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("manifest missing '{key}'"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("manifest '{key}' must hold strings"))
                })
                .collect()
        };
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("manifest missing '{key}'"))?
                .to_string())
        };
        let sample = match v.get("sample") {
            None => None,
            Some(s) => Some((
                s.get("n")
                    .and_then(Value::as_u64)
                    .ok_or("manifest sample missing 'n'")?,
                s.get("seed")
                    .and_then(Value::as_u64)
                    .ok_or("manifest sample missing 'seed'")?,
            )),
        };
        Ok(Manifest {
            experiment: text("experiment")?,
            scale: text("scale")?,
            policies: strs("policies")?,
            groups: strs("groups")?,
            sample,
            version: text("version")?,
            cell_ids: strs("cells")?,
            format: v
                .get("format")
                .and_then(Value::as_u64)
                .ok_or("manifest missing 'format'")?,
        })
    }

    /// Checks that partial results written under `existing` can join this
    /// run. Everything that changes simulation outputs must match; a
    /// mismatch names the offending field so the user knows whether to
    /// pick a fresh directory or rerun the old configuration.
    pub fn compatible_with(&self, existing: &Manifest) -> Result<(), String> {
        let mismatch = |what: &str, old: &str, new: &str| {
            Err(format!(
                "results dir was written by an incompatible run: {what} was '{old}', this run has '{new}'"
            ))
        };
        if existing.format != self.format {
            return mismatch(
                "store format",
                &existing.format.to_string(),
                &self.format.to_string(),
            );
        }
        if existing.version != self.version {
            return mismatch("code version", &existing.version, &self.version);
        }
        if existing.experiment != self.experiment {
            return mismatch("experiment", &existing.experiment, &self.experiment);
        }
        if existing.scale != self.scale {
            return mismatch("scale", &existing.scale, &self.scale);
        }
        if existing.policies != self.policies {
            return mismatch(
                "policy filter",
                &existing.policies.join(","),
                &self.policies.join(","),
            );
        }
        if existing.groups != self.groups {
            return mismatch(
                "group filter",
                &existing.groups.join(","),
                &self.groups.join(","),
            );
        }
        if existing.sample != self.sample {
            return mismatch(
                "sample plan",
                &format!("{:?}", existing.sample),
                &format!("{:?}", self.sample),
            );
        }
        if existing.cell_ids != self.cell_ids {
            return Err(format!(
                "results dir was written by an incompatible run: cell set differs \
                 ({} existing vs {} requested cells)",
                existing.cell_ids.len(),
                self.cell_ids.len()
            ));
        }
        Ok(())
    }
}

/// One journal line: what finished, where, and what it cost.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Finished cell ID.
    pub cell_id: String,
    /// Shard that computed it.
    pub shard_id: String,
    /// Worker wall-clock in milliseconds.
    pub wall_ms: u64,
    /// LLC demand accesses the cell simulated.
    pub accesses: u64,
}

/// The on-disk store rooted at one `--json DIR`.
#[derive(Debug, Clone)]
pub struct ResultsStore {
    dir: PathBuf,
    /// Armed chaos engine: write paths consult it to inject torn cell
    /// files and journal damage (deterministically, keyed by cell ID and
    /// per-cell write count). `None` in production.
    chaos: Option<Arc<ChaosEngine>>,
}

/// Store I/O errors, tagged with the path involved.
#[derive(Debug)]
pub struct StoreError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "results store: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

fn store_err(path: &Path, what: &str, e: impl std::fmt::Display) -> StoreError {
    StoreError {
        message: format!("{what} {}: {e}", path.display()),
    }
}

impl ResultsStore {
    /// Opens (creating directories as needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultsStore, StoreError> {
        let dir = dir.into();
        let cells = dir.join("cells");
        std::fs::create_dir_all(&cells).map_err(|e| store_err(&cells, "create", e))?;
        Ok(ResultsStore { dir, chaos: None })
    }

    /// Arms fault injection on this store's write paths (builder-style;
    /// the orchestrating process installs the engine it read from
    /// `FLEET_CHAOS`).
    pub fn with_chaos(mut self, chaos: Option<Arc<ChaosEngine>>) -> ResultsStore {
        self.chaos = chaos;
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    fn cell_path(&self, cell_id: &str) -> PathBuf {
        self.dir.join("cells").join(format!("{cell_id}.json"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("cells").join("quarantine")
    }

    /// Writes the run manifest (pretty single line + trailing newline).
    pub fn write_manifest(&self, m: &Manifest) -> Result<(), StoreError> {
        let path = self.manifest_path();
        let mut text = m.to_value().render();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| store_err(&path, "write", e))
    }

    /// Reads the manifest, if one exists.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, StoreError> {
        let path = self.manifest_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(store_err(&path, "read", e)),
        };
        let v = json::parse(&text).map_err(|e| store_err(&path, "parse", e))?;
        Manifest::from_value(&v)
            .map(Some)
            .map_err(|e| store_err(&path, "parse", e))
    }

    /// Persists one finished cell (spec + opaque payload + content
    /// checksum) and appends its checksummed journal line. The cell file
    /// is written atomically (tmp + rename) so a crash mid-write never
    /// leaves a torn result that a resume would trust.
    pub fn write_cell(
        &self,
        spec: &CellSpec,
        payload: &Value,
        entry: &JournalEntry,
    ) -> Result<(), StoreError> {
        let doc = seal(json::obj(vec![
            ("spec", spec.to_value()),
            ("payload", payload.clone()),
        ]));
        let path = self.cell_path(&entry.cell_id);
        let mut text = doc.render();
        text.push('\n');
        if let Some(ch) = &self.chaos {
            if ch.fires_counted(Site::TornCellWrite, &entry.cell_id) {
                // A torn write lands directly at the final path —
                // modelling media/kernel faults the tmp+rename dance
                // cannot see — and is what verification must catch.
                let cut = (text.len() / 2).max(1);
                std::fs::write(&path, &text.as_bytes()[..cut])
                    .map_err(|e| store_err(&path, "write", e))?;
                self.append_journal_line(entry)?;
                return Ok(());
            }
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text).map_err(|e| store_err(&tmp, "write", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| store_err(&path, "rename", e))?;
        self.append_journal_line(entry)
    }

    fn append_journal_line(&self, entry: &JournalEntry) -> Result<(), StoreError> {
        let line = seal(journal_value(entry));
        let jpath = self.journal_path();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| store_err(&jpath, "open", e))?;
        writeln!(f, "{}", line.render()).map_err(|e| store_err(&jpath, "append", e))?;
        if let Some(ch) = &self.chaos {
            if ch.fires_counted(Site::JournalDamage, &entry.cell_id) {
                // Tear the tail: a half-written junk line after the real
                // one, as a crash mid-append would leave.
                let rendered = line.render();
                let torn = &rendered[..rendered.len() / 2];
                write!(f, "{torn}").map_err(|e| store_err(&jpath, "append", e))?;
            }
        }
        Ok(())
    }

    /// Journal entries in append order. Unparseable lines are skipped (a
    /// torn final line after a crash must not poison the resume), and so
    /// are lines whose embedded checksum does not verify — a damaged
    /// entry simply makes its cell look not-done, which re-runs it.
    pub fn read_journal(&self) -> Result<Vec<JournalEntry>, StoreError> {
        let path = self.journal_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(store_err(&path, "read", e)),
        };
        Ok(text
            .lines()
            .filter_map(|line| parse_journal_line(line).ok())
            .collect())
    }

    /// IDs of cells that are durably finished: journaled AND whose cell
    /// file exists *and verifies* (the file is the durable unit; the
    /// journal alone does not count). A journaled cell whose file fails
    /// verification is quarantined here — the resume path — so it gets
    /// transparently recomputed instead of silently merged.
    pub fn done_cell_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        let mut seen = Vec::new();
        for e in self.read_journal()? {
            if seen.contains(&e.cell_id) {
                continue;
            }
            seen.push(e.cell_id.clone());
            match self.verify_cell(&e.cell_id) {
                CellHealth::Valid => out.push(e.cell_id),
                CellHealth::Missing => {}
                CellHealth::Corrupt(why) => {
                    let _ = self.quarantine_cell(&e.cell_id, &why)?;
                }
            }
        }
        Ok(out)
    }

    /// Integrity state of one cell file.
    pub fn verify_cell(&self, cell_id: &str) -> CellHealth {
        let path = self.cell_path(cell_id);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CellHealth::Missing,
            Err(e) => return CellHealth::Corrupt(format!("unreadable: {e}")),
        };
        match check_cell_text(cell_id, &text) {
            Ok(_) => CellHealth::Valid,
            Err(why) => CellHealth::Corrupt(why),
        }
    }

    /// Moves a corrupt cell file to `cells/quarantine/` (kept for
    /// forensics; its absence from `cells/` is what triggers recompute).
    pub fn quarantine_cell(&self, cell_id: &str, why: &str) -> Result<PathBuf, StoreError> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir).map_err(|e| store_err(&qdir, "create", e))?;
        let from = self.cell_path(cell_id);
        let to = qdir.join(format!("{cell_id}.json"));
        std::fs::rename(&from, &to).map_err(|e| store_err(&from, "quarantine", e))?;
        eprintln!(
            "# store: quarantined corrupt cell {cell_id} ({why}) → {}",
            to.display()
        );
        Ok(to)
    }

    /// Verifies every cell in `cell_ids`, quarantining the corrupt ones.
    /// Returns `(cell_id, reason)` for each quarantined cell — the set a
    /// fleet run must recompute before its results are trustworthy.
    pub fn quarantine_corrupt(
        &self,
        cell_ids: &[String],
    ) -> Result<Vec<(String, String)>, StoreError> {
        let mut bad = Vec::new();
        for id in cell_ids {
            if let CellHealth::Corrupt(why) = self.verify_cell(id) {
                let _ = self.quarantine_cell(id, &why)?;
                bad.push((id.clone(), why));
            }
        }
        Ok(bad)
    }

    /// Loads one finished cell's payload, verifying its checksum — a
    /// corrupt cell is an error here, never silently merged.
    pub fn read_cell(&self, cell_id: &str) -> Result<(CellSpec, Value), StoreError> {
        let path = self.cell_path(cell_id);
        let text = std::fs::read_to_string(&path).map_err(|e| store_err(&path, "read", e))?;
        check_cell_text(cell_id, &text).map_err(|e| store_err(&path, "verify", e))
    }
}

/// Integrity state of one cell file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellHealth {
    /// Present, parses, checksum and spec hash match.
    Valid,
    /// No file (not computed yet, or already quarantined).
    Missing,
    /// Present but failing verification, with the reason.
    Corrupt(String),
}

/// Adds a `"sum"` field to an object: the content checksum of the object
/// *without* that field, which is exactly what verification recomputes.
fn seal(v: Value) -> Value {
    let sum = content_sum(&v);
    match v {
        Value::Obj(mut m) => {
            m.insert("sum".to_string(), json::str(&sum));
            Value::Obj(m)
        }
        other => other,
    }
}

/// Splits a sealed object back into (content-without-sum, claimed sum).
fn unseal(v: Value) -> Result<(Value, String), String> {
    match v {
        Value::Obj(mut m) => {
            let sum = m
                .remove("sum")
                .and_then(|s| s.as_str().map(str::to_string))
                .ok_or("missing checksum")?;
            Ok((Value::Obj(m), sum))
        }
        _ => Err("not an object".to_string()),
    }
}

/// Full verification of one cell file's text: parses, checks the embedded
/// checksum against the canonical render, and checks the spec hashes to
/// the ID the file is stored under. Returns the verified (spec, payload).
fn check_cell_text(cell_id: &str, text: &str) -> Result<(CellSpec, Value), String> {
    let v = json::parse(text).map_err(|e| format!("parse: {e}"))?;
    let (content, claimed) = unseal(v)?;
    let actual = content_sum(&content);
    if claimed != actual {
        return Err(format!(
            "checksum mismatch (file says {claimed}, content is {actual})"
        ));
    }
    let spec = content
        .get("spec")
        .ok_or("missing spec")
        .and_then(|s| CellSpec::from_value(s).map_err(|_| "bad spec"))
        .map_err(str::to_string)?;
    if spec.id() != cell_id {
        return Err(format!(
            "spec hashes to {} but file is stored as {cell_id}",
            spec.id()
        ));
    }
    let payload = content.get("payload").cloned().ok_or("missing payload")?;
    Ok((spec, payload))
}

/// The journal line for an entry, before sealing.
fn journal_value(entry: &JournalEntry) -> Value {
    json::obj(vec![
        ("cell", json::str(&entry.cell_id)),
        ("shard", json::str(&entry.shard_id)),
        ("wall_ms", json::num_u64(entry.wall_ms)),
        ("accesses", json::num_u64(entry.accesses)),
    ])
}

/// Parses and verifies one journal line.
fn parse_journal_line(line: &str) -> Result<JournalEntry, String> {
    let v = json::parse(line).map_err(|e| format!("parse: {e}"))?;
    let (content, claimed) = unseal(v)?;
    let actual = content_sum(&content);
    if claimed != actual {
        return Err(format!(
            "checksum mismatch (line says {claimed}, content is {actual})"
        ));
    }
    let (Some(cell), Some(shard)) = (
        content.get("cell").and_then(Value::as_str),
        content.get("shard").and_then(Value::as_str),
    ) else {
        return Err("missing cell/shard".to_string());
    };
    Ok(JournalEntry {
        cell_id: cell.to_string(),
        shard_id: shard.to_string(),
        wall_ms: content.get("wall_ms").and_then(Value::as_u64).unwrap_or(0),
        accesses: content.get("accesses").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// One inconsistency `fsck` found.
#[derive(Debug, Clone)]
pub struct FsckIssue {
    /// Issue class: `manifest`, `cell`, `journal`, `tmp`.
    pub kind: &'static str,
    /// Human-readable description naming the file/line involved.
    pub detail: String,
}

/// What an [`fsck`] pass found (and, with repair, did).
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Inconsistencies found (empty = clean).
    pub issues: Vec<FsckIssue>,
    /// Repair actions taken (empty when not repairing or nothing to do).
    pub repairs: Vec<String>,
    /// Cells the manifest expects.
    pub cells_expected: usize,
    /// Cell files that verified.
    pub cells_valid: usize,
    /// Manifest cells with no file at all — not corruption, just not yet
    /// computed (`--resume` picks them up).
    pub cells_missing: usize,
    /// Files already sitting in `cells/quarantine/`.
    pub quarantined: usize,
}

impl FsckReport {
    /// True when no inconsistencies were found.
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fsck: {expected} cells expected · {valid} valid · {missing} not yet computed · {q} quarantined\n",
            expected = self.cells_expected,
            valid = self.cells_valid,
            missing = self.cells_missing,
            q = self.quarantined,
        ));
        for i in &self.issues {
            out.push_str(&format!("fsck: ISSUE [{}] {}\n", i.kind, i.detail));
        }
        for r in &self.repairs {
            out.push_str(&format!("fsck: repaired: {r}\n"));
        }
        out.push_str(&if self.issues.is_empty() {
            "fsck: clean\n".to_string()
        } else {
            format!("fsck: {} issue(s)\n", self.issues.len())
        });
        out
    }
}

/// Audits manifest ↔ journal ↔ cell-file consistency of the store at
/// `dir`: every cell file must parse, verify its checksum, hash to its
/// filename and appear in the manifest; every journal line must parse,
/// verify, and point at a manifest cell whose file is (still) valid; torn
/// `.json.tmp` leftovers are flagged. With `repair`, corrupt or unknown
/// cell files are quarantined, tmp files removed, and the journal is
/// rebuilt from exactly the cell files that verify (synthesized entries
/// carry shard `"fsck"` and zero wall/access accounting — those fields
/// are throughput accounting only), leaving a store `--resume` completes.
pub fn fsck(dir: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    let store = ResultsStore::open(dir)?;
    let mut r = FsckReport::default();

    // Manifest: without one there is nothing to audit against.
    let manifest = match store.read_manifest() {
        Ok(Some(m)) => m,
        Ok(None) => {
            r.issues.push(FsckIssue {
                kind: "manifest",
                detail: format!(
                    "{} has no manifest.json (not a results store?)",
                    dir.display()
                ),
            });
            return Ok(r);
        }
        Err(e) => {
            r.issues.push(FsckIssue {
                kind: "manifest",
                detail: format!("manifest.json unreadable: {e}"),
            });
            return Ok(r);
        }
    };
    r.cells_expected = manifest.cell_ids.len();

    // Cell files: verify each, quarantining on repair.
    let cells_dir = dir.join("cells");
    let mut valid_ids: Vec<String> = Vec::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cells_dir)
        .map_err(|e| store_err(&cells_dir, "read", e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        if name.ends_with(".json.tmp") {
            r.issues.push(FsckIssue {
                kind: "tmp",
                detail: format!("torn temp file cells/{name} (crash mid-write)"),
            });
            if repair {
                std::fs::remove_file(&path).map_err(|e| store_err(&path, "remove", e))?;
                r.repairs.push(format!("removed cells/{name}"));
            }
            continue;
        }
        let Some(id) = name.strip_suffix(".json") else {
            r.issues.push(FsckIssue {
                kind: "cell",
                detail: format!("stray file cells/{name}"),
            });
            continue;
        };
        let problem = match store.verify_cell(id) {
            CellHealth::Valid => {
                if manifest.cell_ids.contains(&id.to_string()) {
                    valid_ids.push(id.to_string());
                    continue;
                }
                "valid but not in the manifest (wrong run?)".to_string()
            }
            CellHealth::Corrupt(why) => why,
            CellHealth::Missing => continue, // raced away; nothing to audit
        };
        r.issues.push(FsckIssue {
            kind: "cell",
            detail: format!("cells/{name}: {problem}"),
        });
        if repair {
            let to = store.quarantine_cell(id, &problem)?;
            r.repairs
                .push(format!("quarantined cells/{name} → {}", to.display()));
        }
    }
    r.cells_valid = valid_ids.len();
    r.cells_missing = manifest
        .cell_ids
        .iter()
        .filter(|id| !valid_ids.contains(id))
        .count();

    // Journal: parse + verify every raw line against the valid cell set.
    let jpath = dir.join("journal.jsonl");
    let mut journal_ok: Vec<JournalEntry> = Vec::new();
    let mut journal_bad = false;
    let jtext = match std::fs::read_to_string(&jpath) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(store_err(&jpath, "read", e)),
    };
    for (n, line) in jtext.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_journal_line(line) {
            Err(why) => {
                r.issues.push(FsckIssue {
                    kind: "journal",
                    detail: format!("journal.jsonl line {}: {why}", n + 1),
                });
                journal_bad = true;
            }
            Ok(e) => {
                if !manifest.cell_ids.contains(&e.cell_id) {
                    r.issues.push(FsckIssue {
                        kind: "journal",
                        detail: format!(
                            "journal.jsonl line {}: names cell {} outside the manifest",
                            n + 1,
                            e.cell_id
                        ),
                    });
                    journal_bad = true;
                } else if !valid_ids.contains(&e.cell_id) {
                    r.issues.push(FsckIssue {
                        kind: "journal",
                        detail: format!(
                            "journal.jsonl line {}: cell {} journaled but its file is missing or invalid",
                            n + 1,
                            e.cell_id
                        ),
                    });
                    journal_bad = true;
                } else if journal_ok.iter().any(|j| j.cell_id == e.cell_id) {
                    // Duplicate of a valid entry: harmless, drop on repair.
                    journal_bad = true;
                } else {
                    journal_ok.push(e);
                }
            }
        }
    }
    // Valid cell files the journal never recorded (crash between the
    // rename and the append) look not-done to resume; surface them.
    for id in &valid_ids {
        if !journal_ok.iter().any(|j| &j.cell_id == id) {
            r.issues.push(FsckIssue {
                kind: "journal",
                detail: format!("cell {id} has a valid file but no journal entry"),
            });
            journal_bad = true;
        }
    }

    if repair && journal_bad {
        // Rebuild the journal from exactly the cell files that verify.
        for id in &valid_ids {
            if !journal_ok.iter().any(|j| &j.cell_id == id) {
                journal_ok.push(JournalEntry {
                    cell_id: id.clone(),
                    shard_id: "fsck".to_string(),
                    wall_ms: 0,
                    accesses: 0,
                });
            }
        }
        let mut text = String::new();
        for e in &journal_ok {
            text.push_str(&seal(journal_value(e)).render());
            text.push('\n');
        }
        let tmp = jpath.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text).map_err(|e| store_err(&tmp, "write", e))?;
        std::fs::rename(&tmp, &jpath).map_err(|e| store_err(&jpath, "rename", e))?;
        r.repairs.push(format!(
            "rebuilt journal.jsonl with {} verified entries",
            journal_ok.len()
        ));
    }

    let qdir = cells_dir.join("quarantine");
    r.quarantined = std::fs::read_dir(&qdir)
        .map(|it| it.filter_map(|e| e.ok()).count())
        .unwrap_or(0);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fleet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(cells: &[CellSpec]) -> Manifest {
        Manifest::new(
            "fig5_10",
            "quick",
            &["cooperative".to_string()],
            &[],
            None,
            "v-test",
            cells,
        )
    }

    #[test]
    fn manifest_roundtrips() {
        let cells = vec![
            CellSpec::sweep("G2-1", "cooperative", 2, "quick"),
            CellSpec::solo("namd", 2, "quick"),
        ];
        let m = manifest(&cells);
        let back = Manifest::from_value(&json::parse(&m.to_value().render()).expect("json"))
            .expect("manifest");
        assert_eq!(back, m);
        let mut sampled = m.clone();
        sampled.sample = Some((64, 7));
        let back = Manifest::from_value(&json::parse(&sampled.to_value().render()).expect("json"))
            .expect("manifest");
        assert_eq!(back.sample, Some((64, 7)));
    }

    #[test]
    fn incompatible_manifests_name_the_field() {
        let cells = vec![CellSpec::sweep("G2-1", "cooperative", 2, "quick")];
        let m = manifest(&cells);
        let mut other = m.clone();
        other.scale = "small".to_string();
        let msg = m.compatible_with(&other).expect_err("scale differs");
        assert!(msg.contains("scale"), "{msg}");
        let mut other = m.clone();
        other.version = "v-older".to_string();
        assert!(m
            .compatible_with(&other)
            .expect_err("version differs")
            .contains("version"));
        let mut other = m.clone();
        other.cell_ids.push("ffff".to_string());
        assert!(m
            .compatible_with(&other)
            .expect_err("cells differ")
            .contains("cell set"));
        assert!(m.compatible_with(&m.clone()).is_ok());
    }

    #[test]
    fn cells_and_journal_survive_reopen() {
        let dir = tmpdir("journal");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        let payload = json::obj(vec![("ipc", json::arr_f64(&[1.25, 0.5]))]);
        store
            .write_cell(
                &spec,
                &payload,
                &JournalEntry {
                    cell_id: spec.id(),
                    shard_id: "shard0".to_string(),
                    wall_ms: 10,
                    accesses: 1000,
                },
            )
            .expect("write");
        // Reopen as a resume would.
        let store = ResultsStore::open(&dir).expect("reopen");
        assert_eq!(store.done_cell_ids().expect("done"), vec![spec.id()]);
        let (back_spec, back_payload) = store.read_cell(&spec.id()).expect("read");
        assert_eq!(back_spec, spec);
        assert_eq!(back_payload, payload);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_lines_are_skipped() {
        let dir = tmpdir("torn");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-2", "ucp", 2, "quick");
        store
            .write_cell(
                &spec,
                &json::obj(vec![]),
                &JournalEntry {
                    cell_id: spec.id(),
                    shard_id: "s".to_string(),
                    wall_ms: 1,
                    accesses: 1,
                },
            )
            .expect("write");
        // Simulate a crash mid-append.
        let jpath = dir.join("journal.jsonl");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&jpath)
            .expect("open journal");
        write!(f, "{{\"cell\":\"deadbeef").expect("torn write");
        drop(f);
        assert_eq!(store.done_cell_ids().expect("done"), vec![spec.id()]);
        // A journaled cell whose file vanished is not durable.
        std::fs::remove_file(dir.join("cells").join(format!("{}.json", spec.id())))
            .expect("remove cell file");
        assert!(store.done_cell_ids().expect("done").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_reads_as_none() {
        let dir = tmpdir("nomanifest");
        let store = ResultsStore::open(&dir).expect("open");
        assert!(store.read_manifest().expect("read").is_none());
        store.write_manifest(&manifest(&[])).expect("write");
        assert!(store.read_manifest().expect("read").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_one(store: &ResultsStore, spec: &CellSpec) {
        store
            .write_cell(
                spec,
                &json::obj(vec![("ipc", json::arr_f64(&[1.25, 0.5]))]),
                &JournalEntry {
                    cell_id: spec.id(),
                    shard_id: "s0".to_string(),
                    wall_ms: 10,
                    accesses: 1000,
                },
            )
            .expect("write");
    }

    #[test]
    fn bit_flips_fail_verification_and_resume_quarantines() {
        let dir = tmpdir("bitflip");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        write_one(&store, &spec);
        assert_eq!(store.verify_cell(&spec.id()), CellHealth::Valid);
        assert!(store.read_cell(&spec.id()).is_ok());

        // Flip one payload digit in place: still valid JSON, wrong sum.
        let path = dir.join("cells").join(format!("{}.json", spec.id()));
        let text = std::fs::read_to_string(&path).expect("read");
        let flipped = text.replace("1.25", "1.35");
        assert_ne!(flipped, text);
        std::fs::write(&path, flipped).expect("rewrite");
        assert!(matches!(
            store.verify_cell(&spec.id()),
            CellHealth::Corrupt(_)
        ));
        assert!(
            store.read_cell(&spec.id()).is_err(),
            "corrupt cells never merge"
        );

        // The resume path quarantines it and reports the cell not done.
        assert!(store.done_cell_ids().expect("done").is_empty());
        assert_eq!(store.verify_cell(&spec.id()), CellHealth::Missing);
        assert!(dir
            .join("cells")
            .join("quarantine")
            .join(format!("{}.json", spec.id()))
            .exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spec_filename_mismatch_is_corrupt() {
        let dir = tmpdir("idmismatch");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        write_one(&store, &spec);
        // A valid cell file stored under the wrong name must not verify:
        // its payload answers a different question than the ID asks.
        let text = std::fs::read_to_string(dir.join("cells").join(format!("{}.json", spec.id())))
            .expect("read");
        let other = CellSpec::sweep("G2-2", "ucp", 2, "quick");
        let wrong = dir.join("cells").join(format!("{}.json", other.id()));
        std::fs::write(&wrong, text).expect("write");
        match store.verify_cell(&other.id()) {
            CellHealth::Corrupt(why) => assert!(why.contains("stored as"), "{why}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_journal_checksums_hide_the_entry() {
        let dir = tmpdir("jsum");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        write_one(&store, &spec);
        // Corrupt the journal line's accounting: parses, checksum fails,
        // so the entry is skipped and the cell looks not-done.
        let jpath = dir.join("journal.jsonl");
        let text = std::fs::read_to_string(&jpath).expect("read");
        std::fs::write(&jpath, text.replace("\"wall_ms\":10", "\"wall_ms\":99")).expect("write");
        assert!(store.read_journal().expect("journal").is_empty());
        assert!(store.done_cell_ids().expect("done").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_and_repairs_a_three_way_corruption() {
        let dir = tmpdir("fsck");
        let store = ResultsStore::open(&dir).expect("open");
        let a = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        let b = CellSpec::sweep("G2-2", "ucp", 2, "quick");
        let c = CellSpec::sweep("G2-3", "ucp", 2, "quick");
        store
            .write_manifest(&manifest(&[a.clone(), b.clone(), c.clone()]))
            .expect("manifest");
        for s in [&a, &b, &c] {
            write_one(&store, s);
        }
        let report = fsck(&dir, false).expect("fsck");
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.cells_valid, 3);

        // Acceptance scenario: a truncated cell, a torn journal tail, and
        // a bit-flipped cell — all three must be reported.
        let a_path = dir.join("cells").join(format!("{}.json", a.id()));
        let text = std::fs::read_to_string(&a_path).expect("read");
        std::fs::write(&a_path, &text.as_bytes()[..text.len() / 2]).expect("truncate");
        let b_path = dir.join("cells").join(format!("{}.json", b.id()));
        let text = std::fs::read_to_string(&b_path).expect("read");
        std::fs::write(&b_path, text.replace("1.25", "1.35")).expect("flip");
        let jpath = dir.join("journal.jsonl");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&jpath)
            .expect("open journal");
        write!(f, "{{\"cell\":\"dead").expect("tear");
        drop(f);

        let report = fsck(&dir, false).expect("fsck");
        assert!(!report.clean());
        let kinds: Vec<&str> = report.issues.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&"cell"), "{:?}", report.issues);
        assert!(kinds.contains(&"journal"), "{:?}", report.issues);
        // Both damaged cells show up, plus their now-dangling journal
        // entries, plus the torn tail line.
        assert!(report.issues.len() >= 5, "{}", report.render());
        assert!(report.repairs.is_empty(), "audit mode must not write");

        // Repair: quarantine the two bad cells, rebuild the journal.
        let report = fsck(&dir, true).expect("fsck --repair");
        assert!(!report.repairs.is_empty());
        let report = fsck(&dir, false).expect("fsck after repair");
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.cells_valid, 1);
        assert_eq!(report.cells_missing, 2);
        assert_eq!(report.quarantined, 2);
        // The repaired store is resumable: exactly c is done.
        assert_eq!(store.done_cell_ids().expect("done"), vec![c.id()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_flags_tmp_leftovers_and_unknown_cells() {
        let dir = tmpdir("fscktmp");
        let store = ResultsStore::open(&dir).expect("open");
        let a = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        store
            .write_manifest(&manifest(std::slice::from_ref(&a)))
            .expect("manifest");
        write_one(&store, &a);
        // A torn temp file and a valid-but-foreign cell file.
        std::fs::write(dir.join("cells").join("deadbeef.json.tmp"), b"{\"par").expect("tmp");
        let foreign = CellSpec::sweep("G4-1", "ucp", 4, "quick");
        write_one(&store, &foreign);
        let report = fsck(&dir, false).expect("fsck");
        assert!(!report.clean());
        assert!(report.issues.iter().any(|i| i.kind == "tmp"));
        assert!(report
            .issues
            .iter()
            .any(|i| i.kind == "cell" && i.detail.contains("not in the manifest")));
        let report = fsck(&dir, true).expect("repair");
        assert!(!report.repairs.is_empty());
        assert!(fsck(&dir, false).expect("recheck").clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_torn_writes_are_caught_by_resume() {
        let chaos = Arc::new(ChaosEngine::parse("11:torn").expect("chaos"));
        let dir = tmpdir("chaostorn");
        let store = ResultsStore::open(&dir)
            .expect("open")
            .with_chaos(Some(Arc::clone(&chaos)));
        // Write cells until the schedule tears one; the clean reopened
        // store must quarantine exactly the torn ones.
        let specs: Vec<CellSpec> = (0..24)
            .map(|i| CellSpec::sweep(&format!("G2-{i}"), "ucp", 2, "quick"))
            .collect();
        for s in &specs {
            write_one(&store, s);
        }
        let clean = ResultsStore::open(&dir).expect("reopen");
        let done = clean.done_cell_ids().expect("done");
        assert!(
            done.len() < specs.len(),
            "the torn profile tore something in 24 writes"
        );
        assert!(!done.is_empty(), "and not everything");
        for id in &done {
            assert!(clean.read_cell(id).is_ok());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
