//! The durable results store behind `--json DIR`.
//!
//! Layout:
//!
//! ```text
//! DIR/manifest.json     run manifest: what/scale/filters/version + cell IDs
//! DIR/cells/<id>.json   one finished cell: {"spec": ..., "payload": ...}
//! DIR/journal.jsonl     append-only journal, one line per finished cell
//! DIR/<experiment>.json merged experiment outputs (written by repro)
//! ```
//!
//! The per-cell file is the durable unit (PR 4's JSON output format carried
//! over): a crash after N cells keeps N results. The journal is the fast
//! resume index — `--resume` diffs the manifest's cell set against the
//! journal and re-runs only what is missing — and the manifest is the
//! compatibility gate: a resumed run refuses to mix partial results from a
//! different scale, filter set, sample plan or code version instead of
//! silently merging them.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::cell::CellSpec;
use crate::json::{self, Value};

/// Results-store format version (bump when the cell payload layout
/// changes incompatibly).
pub const STORE_FORMAT: u64 = 1;

/// The run manifest: everything that must match for partial results to be
/// mergeable.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The repro target (e.g. `"fig5_10"`, `"sample"`).
    pub experiment: String,
    /// Scale preset name.
    pub scale: String,
    /// Canonical policy filter (empty = paper default set).
    pub policies: Vec<String>,
    /// Canonical group filter (empty = all groups).
    pub groups: Vec<String>,
    /// Monte Carlo plan, when sampling: (mix count, RNG seed).
    pub sample: Option<(u64, u64)>,
    /// Code version (git-describe-ish; see [`crate::version_string`]).
    pub version: String,
    /// Sorted IDs of every cell the run needs.
    pub cell_ids: Vec<String>,
    /// Store format version.
    pub format: u64,
}

impl Manifest {
    /// Builds a manifest over `cells` (IDs are sorted for stability).
    pub fn new(
        experiment: &str,
        scale: &str,
        policies: &[String],
        groups: &[String],
        sample: Option<(u64, u64)>,
        version: &str,
        cells: &[CellSpec],
    ) -> Manifest {
        let mut cell_ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        cell_ids.sort();
        cell_ids.dedup();
        Manifest {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            policies: policies.to_vec(),
            groups: groups.to_vec(),
            sample,
            version: version.to_string(),
            cell_ids,
            format: STORE_FORMAT,
        }
    }

    /// Serializes the manifest.
    pub fn to_value(&self) -> Value {
        let strs = |v: &[String]| Value::Arr(v.iter().map(json::str).collect());
        let mut fields = vec![
            ("experiment", json::str(&self.experiment)),
            ("scale", json::str(&self.scale)),
            ("policies", strs(&self.policies)),
            ("groups", strs(&self.groups)),
            ("version", json::str(&self.version)),
            ("cells", strs(&self.cell_ids)),
            ("format", json::num_u64(self.format)),
        ];
        if let Some((n, seed)) = self.sample {
            fields.push((
                "sample",
                json::obj(vec![("n", json::num_u64(n)), ("seed", json::num_u64(seed))]),
            ));
        }
        json::obj(fields)
    }

    /// Parses a manifest.
    pub fn from_value(v: &Value) -> Result<Manifest, String> {
        let strs = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("manifest missing '{key}'"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("manifest '{key}' must hold strings"))
                })
                .collect()
        };
        let text = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("manifest missing '{key}'"))?
                .to_string())
        };
        let sample = match v.get("sample") {
            None => None,
            Some(s) => Some((
                s.get("n")
                    .and_then(Value::as_u64)
                    .ok_or("manifest sample missing 'n'")?,
                s.get("seed")
                    .and_then(Value::as_u64)
                    .ok_or("manifest sample missing 'seed'")?,
            )),
        };
        Ok(Manifest {
            experiment: text("experiment")?,
            scale: text("scale")?,
            policies: strs("policies")?,
            groups: strs("groups")?,
            sample,
            version: text("version")?,
            cell_ids: strs("cells")?,
            format: v
                .get("format")
                .and_then(Value::as_u64)
                .ok_or("manifest missing 'format'")?,
        })
    }

    /// Checks that partial results written under `existing` can join this
    /// run. Everything that changes simulation outputs must match; a
    /// mismatch names the offending field so the user knows whether to
    /// pick a fresh directory or rerun the old configuration.
    pub fn compatible_with(&self, existing: &Manifest) -> Result<(), String> {
        let mismatch = |what: &str, old: &str, new: &str| {
            Err(format!(
                "results dir was written by an incompatible run: {what} was '{old}', this run has '{new}'"
            ))
        };
        if existing.format != self.format {
            return mismatch(
                "store format",
                &existing.format.to_string(),
                &self.format.to_string(),
            );
        }
        if existing.version != self.version {
            return mismatch("code version", &existing.version, &self.version);
        }
        if existing.experiment != self.experiment {
            return mismatch("experiment", &existing.experiment, &self.experiment);
        }
        if existing.scale != self.scale {
            return mismatch("scale", &existing.scale, &self.scale);
        }
        if existing.policies != self.policies {
            return mismatch(
                "policy filter",
                &existing.policies.join(","),
                &self.policies.join(","),
            );
        }
        if existing.groups != self.groups {
            return mismatch(
                "group filter",
                &existing.groups.join(","),
                &self.groups.join(","),
            );
        }
        if existing.sample != self.sample {
            return mismatch(
                "sample plan",
                &format!("{:?}", existing.sample),
                &format!("{:?}", self.sample),
            );
        }
        if existing.cell_ids != self.cell_ids {
            return Err(format!(
                "results dir was written by an incompatible run: cell set differs \
                 ({} existing vs {} requested cells)",
                existing.cell_ids.len(),
                self.cell_ids.len()
            ));
        }
        Ok(())
    }
}

/// One journal line: what finished, where, and what it cost.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// Finished cell ID.
    pub cell_id: String,
    /// Shard that computed it.
    pub shard_id: String,
    /// Worker wall-clock in milliseconds.
    pub wall_ms: u64,
    /// LLC demand accesses the cell simulated.
    pub accesses: u64,
}

/// The on-disk store rooted at one `--json DIR`.
#[derive(Debug, Clone)]
pub struct ResultsStore {
    dir: PathBuf,
}

/// Store I/O errors, tagged with the path involved.
#[derive(Debug)]
pub struct StoreError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "results store: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

fn store_err(path: &Path, what: &str, e: impl std::fmt::Display) -> StoreError {
    StoreError {
        message: format!("{what} {}: {e}", path.display()),
    }
}

impl ResultsStore {
    /// Opens (creating directories as needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultsStore, StoreError> {
        let dir = dir.into();
        let cells = dir.join("cells");
        std::fs::create_dir_all(&cells).map_err(|e| store_err(&cells, "create", e))?;
        Ok(ResultsStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.jsonl")
    }

    fn cell_path(&self, cell_id: &str) -> PathBuf {
        self.dir.join("cells").join(format!("{cell_id}.json"))
    }

    /// Writes the run manifest (pretty single line + trailing newline).
    pub fn write_manifest(&self, m: &Manifest) -> Result<(), StoreError> {
        let path = self.manifest_path();
        let mut text = m.to_value().render();
        text.push('\n');
        std::fs::write(&path, text).map_err(|e| store_err(&path, "write", e))
    }

    /// Reads the manifest, if one exists.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, StoreError> {
        let path = self.manifest_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(store_err(&path, "read", e)),
        };
        let v = json::parse(&text).map_err(|e| store_err(&path, "parse", e))?;
        Manifest::from_value(&v)
            .map(Some)
            .map_err(|e| store_err(&path, "parse", e))
    }

    /// Persists one finished cell (spec + opaque payload) and appends its
    /// journal line. The cell file is written atomically (tmp + rename) so
    /// a crash mid-write never leaves a torn result that a resume would
    /// trust.
    pub fn write_cell(
        &self,
        spec: &CellSpec,
        payload: &Value,
        entry: &JournalEntry,
    ) -> Result<(), StoreError> {
        let doc = json::obj(vec![
            ("spec", spec.to_value()),
            ("payload", payload.clone()),
        ]);
        let path = self.cell_path(&entry.cell_id);
        let tmp = path.with_extension("json.tmp");
        let mut text = doc.render();
        text.push('\n');
        std::fs::write(&tmp, text).map_err(|e| store_err(&tmp, "write", e))?;
        std::fs::rename(&tmp, &path).map_err(|e| store_err(&path, "rename", e))?;

        let line = json::obj(vec![
            ("cell", json::str(&entry.cell_id)),
            ("shard", json::str(&entry.shard_id)),
            ("wall_ms", json::num_u64(entry.wall_ms)),
            ("accesses", json::num_u64(entry.accesses)),
        ]);
        let jpath = self.journal_path();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&jpath)
            .map_err(|e| store_err(&jpath, "open", e))?;
        writeln!(f, "{}", line.render()).map_err(|e| store_err(&jpath, "append", e))
    }

    /// Journal entries in append order (unparseable lines are skipped —
    /// a torn final line after a crash must not poison the resume).
    pub fn read_journal(&self) -> Result<Vec<JournalEntry>, StoreError> {
        let path = self.journal_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(store_err(&path, "read", e)),
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let Ok(v) = json::parse(line) else { continue };
            let (Some(cell), Some(shard)) = (
                v.get("cell").and_then(Value::as_str),
                v.get("shard").and_then(Value::as_str),
            ) else {
                continue;
            };
            out.push(JournalEntry {
                cell_id: cell.to_string(),
                shard_id: shard.to_string(),
                wall_ms: v.get("wall_ms").and_then(Value::as_u64).unwrap_or(0),
                accesses: v.get("accesses").and_then(Value::as_u64).unwrap_or(0),
            });
        }
        Ok(out)
    }

    /// IDs of cells that are durably finished: journaled AND whose cell
    /// file exists (the file is the durable unit; the journal alone does
    /// not count).
    pub fn done_cell_ids(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        for e in self.read_journal()? {
            if self.cell_path(&e.cell_id).exists() && !out.contains(&e.cell_id) {
                out.push(e.cell_id);
            }
        }
        Ok(out)
    }

    /// Loads one finished cell's payload.
    pub fn read_cell(&self, cell_id: &str) -> Result<(CellSpec, Value), StoreError> {
        let path = self.cell_path(cell_id);
        let text = std::fs::read_to_string(&path).map_err(|e| store_err(&path, "read", e))?;
        let v = json::parse(&text).map_err(|e| store_err(&path, "parse", e))?;
        let spec = v
            .get("spec")
            .ok_or_else(|| store_err(&path, "parse", "missing spec"))
            .and_then(|s| CellSpec::from_value(s).map_err(|e| store_err(&path, "parse", e)))?;
        let payload = v
            .get("payload")
            .cloned()
            .ok_or_else(|| store_err(&path, "parse", "missing payload"))?;
        Ok((spec, payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fleet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(cells: &[CellSpec]) -> Manifest {
        Manifest::new(
            "fig5_10",
            "quick",
            &["cooperative".to_string()],
            &[],
            None,
            "v-test",
            cells,
        )
    }

    #[test]
    fn manifest_roundtrips() {
        let cells = vec![
            CellSpec::sweep("G2-1", "cooperative", 2, "quick"),
            CellSpec::solo("namd", 2, "quick"),
        ];
        let m = manifest(&cells);
        let back = Manifest::from_value(&json::parse(&m.to_value().render()).expect("json"))
            .expect("manifest");
        assert_eq!(back, m);
        let mut sampled = m.clone();
        sampled.sample = Some((64, 7));
        let back = Manifest::from_value(&json::parse(&sampled.to_value().render()).expect("json"))
            .expect("manifest");
        assert_eq!(back.sample, Some((64, 7)));
    }

    #[test]
    fn incompatible_manifests_name_the_field() {
        let cells = vec![CellSpec::sweep("G2-1", "cooperative", 2, "quick")];
        let m = manifest(&cells);
        let mut other = m.clone();
        other.scale = "small".to_string();
        let msg = m.compatible_with(&other).expect_err("scale differs");
        assert!(msg.contains("scale"), "{msg}");
        let mut other = m.clone();
        other.version = "v-older".to_string();
        assert!(m
            .compatible_with(&other)
            .expect_err("version differs")
            .contains("version"));
        let mut other = m.clone();
        other.cell_ids.push("ffff".to_string());
        assert!(m
            .compatible_with(&other)
            .expect_err("cells differ")
            .contains("cell set"));
        assert!(m.compatible_with(&m.clone()).is_ok());
    }

    #[test]
    fn cells_and_journal_survive_reopen() {
        let dir = tmpdir("journal");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-1", "ucp", 2, "quick");
        let payload = json::obj(vec![("ipc", json::arr_f64(&[1.25, 0.5]))]);
        store
            .write_cell(
                &spec,
                &payload,
                &JournalEntry {
                    cell_id: spec.id(),
                    shard_id: "shard0".to_string(),
                    wall_ms: 10,
                    accesses: 1000,
                },
            )
            .expect("write");
        // Reopen as a resume would.
        let store = ResultsStore::open(&dir).expect("reopen");
        assert_eq!(store.done_cell_ids().expect("done"), vec![spec.id()]);
        let (back_spec, back_payload) = store.read_cell(&spec.id()).expect("read");
        assert_eq!(back_spec, spec);
        assert_eq!(back_payload, payload);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_lines_are_skipped() {
        let dir = tmpdir("torn");
        let store = ResultsStore::open(&dir).expect("open");
        let spec = CellSpec::sweep("G2-2", "ucp", 2, "quick");
        store
            .write_cell(
                &spec,
                &json::obj(vec![]),
                &JournalEntry {
                    cell_id: spec.id(),
                    shard_id: "s".to_string(),
                    wall_ms: 1,
                    accesses: 1,
                },
            )
            .expect("write");
        // Simulate a crash mid-append.
        let jpath = dir.join("journal.jsonl");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&jpath)
            .expect("open journal");
        write!(f, "{{\"cell\":\"deadbeef").expect("torn write");
        drop(f);
        assert_eq!(store.done_cell_ids().expect("done"), vec![spec.id()]);
        // A journaled cell whose file vanished is not durable.
        std::fs::remove_file(dir.join("cells").join(format!("{}.json", spec.id())))
            .expect("remove cell file");
        assert!(store.done_cell_ids().expect("done").is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_reads_as_none() {
        let dir = tmpdir("nomanifest");
        let store = ResultsStore::open(&dir).expect("open");
        assert!(store.read_manifest().expect("read").is_none());
        store.write_manifest(&manifest(&[])).expect("write");
        assert!(store.read_manifest().expect("read").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
