//! Fleet sweep orchestration: sharded, resumable, fault-tolerant sweep
//! execution across worker processes.
//!
//! This crate is a pure orchestration substrate — it knows nothing about
//! caches, policies or workloads. A sweep is modelled as a set of
//! [`cell::CellSpec`]s (content-hash-addressed units of work), dealt into
//! [`shard::Shard`]s, executed by worker processes speaking the NDJSON
//! [`protocol`] over stdin/stdout, and persisted cell-by-cell into a
//! [`store::ResultsStore`] whose manifest + journal make runs resumable
//! and guard against mixing incompatible partial results. The harness
//! plugs in at exactly two points: a [`worker::CellRunner`] that knows
//! how to execute one cell, and code that merges stored payloads back
//! into its own result tables.
//!
//! Layering (nothing here depends on the simulator):
//!
//! ```text
//! harness (repro bin) ──> fleet::orchestrator ── NDJSON ──> repro worker
//!        │                        │                              │
//!        │ merge payloads         │ journal + manifest           │ CellRunner
//!        └──── fleet::store <─────┘                              ▼
//!                                                       harness::fleet_run
//! ```

pub mod cell;
pub mod chaos;
pub mod json;
pub mod orchestrator;
pub mod protocol;
pub mod shard;
pub mod store;
pub mod worker;

pub use cell::{content_sum, CellKind, CellSpec};
pub use chaos::ChaosEngine;
pub use orchestrator::{run_fleet, FleetConfig, FleetReport};
pub use shard::{plan_shards, Shard};
pub use store::{
    fsck, CellHealth, FsckReport, JournalEntry, Manifest, ResultsStore, StoreError, STORE_FORMAT,
};
pub use worker::{serve, CellRunner};

/// The version stamped into run manifests, used to refuse resuming onto
/// partial results produced by a different build. Sources, in order:
/// `FLEET_VERSION` (CI pins it), `git describe --always --dirty --tags`
/// (developer checkouts), else the crate version.
pub fn version_string() -> String {
    if let Ok(v) = std::env::var("FLEET_VERSION") {
        if !v.trim().is_empty() {
            return v.trim().to_string();
        }
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
    {
        if out.status.success() {
            let desc = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !desc.is_empty() {
                return desc;
            }
        }
    }
    format!("v{}", env!("CARGO_PKG_VERSION"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_string_is_nonempty() {
        assert!(!super::version_string().is_empty());
    }
}
