//! Minimal JSON reading/writing for the fleet protocol and results store.
//!
//! The vendored `serde` derives are no-op stand-ins (see `vendor/README.md`),
//! so the repo hand-rolls its machine-readable output. The fleet subsystem
//! additionally needs to *read* JSON back — worker protocol messages, stored
//! cell results, manifests — so this module carries a small self-contained
//! parser and writer.
//!
//! Numbers are kept as their raw source text ([`Value::Num`]) and converted
//! on demand: floats written with Rust's shortest-roundtrip formatting
//! (`{:?}`) parse back to the bit-identical `f64`, and `u64` counters larger
//! than 2^53 never lose precision by being squeezed through a double. That
//! property is what lets a resumed, re-merged sweep reproduce the
//! single-process tables bit for bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order irrelevant by
/// using a sorted map; duplicate keys keep the last occurrence.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text (lossless for u64 and f64).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is an integer token in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The number as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The number as `f64` (exact round-trip for values written by
    /// [`fmt_f64`]); accepts the `"NaN"`/`"inf"`/`"-inf"` string escapes.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse::<f64>().ok(),
            Value::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The bool payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => out.push_str(&escape(s)),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&escape(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Builds a [`Value::Obj`] from key/value pairs.
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A string value.
pub fn str(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// An unsigned-integer value (lossless at any magnitude).
pub fn num_u64(v: u64) -> Value {
    Value::Num(v.to_string())
}

/// A float value via shortest-roundtrip formatting; non-finite values
/// become the string escapes [`Value::as_f64`] understands.
pub fn num_f64(v: f64) -> Value {
    if v.is_nan() {
        Value::Str("NaN".to_string())
    } else if v.is_infinite() {
        Value::Str(if v > 0.0 { "inf" } else { "-inf" }.to_string())
    } else {
        Value::Num(fmt_f64(v))
    }
}

/// An array of floats.
pub fn arr_f64(vs: &[f64]) -> Value {
    Value::Arr(vs.iter().map(|&v| num_f64(v)).collect())
}

/// An array of unsigned integers.
pub fn arr_u64(vs: &[u64]) -> Value {
    Value::Arr(vs.iter().map(|&v| num_u64(v)).collect())
}

/// Reads a float array back.
pub fn read_arr_f64(v: &Value) -> Result<Vec<f64>, ParseError> {
    v.as_arr()
        .ok_or_else(|| ParseError::shape("expected float array"))?
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| ParseError::shape("expected float"))
        })
        .collect()
}

/// Reads an unsigned-integer array back.
pub fn read_arr_u64(v: &Value) -> Result<Vec<u64>, ParseError> {
    v.as_arr()
        .ok_or_else(|| ParseError::shape("expected integer array"))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| ParseError::shape("expected integer"))
        })
        .collect()
}

/// Shortest-roundtrip float text: parsing it back yields the identical
/// IEEE-754 double.
pub fn fmt_f64(v: f64) -> String {
    let s = format!("{v:?}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(v), "roundtrip {s}");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Human description.
    pub message: String,
    /// Byte offset where the problem was noticed (0 for shape errors
    /// raised by typed readers).
    pub offset: usize,
}

impl ParseError {
    fn shape(message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: 0,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our own
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii slice")
            .to_string();
        if raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":"q\"\n"}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(parse(&v.render()).expect("reparses"), v);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("e").and_then(Value::as_str), Some("q\"\n"));
    }

    #[test]
    fn floats_roundtrip_bit_identically() {
        for v in [
            0.30639789443366944_f64,
            1.485567709700262,
            -1.0e-300,
            123456789.000000001,
            f64::MIN_POSITIVE,
        ] {
            let text = num_f64(v).render();
            let back = parse(&text).expect("number").as_f64().expect("f64");
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn non_finite_floats_use_string_escapes() {
        assert!(parse(&num_f64(f64::NAN).render())
            .unwrap()
            .as_f64()
            .unwrap()
            .is_nan());
        assert_eq!(
            parse(&num_f64(f64::INFINITY).render()).unwrap().as_f64(),
            Some(f64::INFINITY)
        );
    }

    #[test]
    fn u64_counters_do_not_lose_precision() {
        let big = u64::MAX - 3;
        let v = parse(&num_u64(big).render()).expect("number");
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "nulL", "1 2", ""] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
    }
}
