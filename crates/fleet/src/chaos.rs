//! Deterministic fault injection: the chaos engine.
//!
//! `FLEET_CHAOS=<seed>:<profile>` arms an injection plane at every I/O
//! boundary of the fleet — worker kill/hang/slow at chosen protocol
//! states, NDJSON corruption and truncation, torn store writes, journal
//! tail damage, spawn failure — driven by a *reproducible schedule*:
//! every decision is a pure function of `(seed, site, stable key)` where
//! the key is content-derived (shard ID + attempt, cell ID + per-cell
//! occurrence count), never wall-clock or interleaving. The same seed and
//! profile therefore injects the same faults at the same logical points
//! on every run, so any chaos run that breaks can be replayed bit-exactly
//! — and a `--resume` without `FLEET_CHAOS` completes it cleanly.
//!
//! Profiles:
//!
//! | profile   | injects                                               |
//! |-----------|-------------------------------------------------------|
//! | `off`     | nothing (explicit no-op)                              |
//! | `kill`    | worker exit/hang on assign, death after one cell, slow cells |
//! | `corrupt` | NDJSON byte flips, mid-line truncation + death, cell panics |
//! | `torn`    | short cell-file writes, journal tail damage           |
//! | `spawn`   | worker spawn failures (exercises in-process fallback) |
//! | `mixed`   | all of the above at moderated rates                   |
//!
//! A targeted form pins a fault to one shard for regression tests:
//! `FLEET_CHAOS=<seed>:shard:<ordinal|id-prefix>:<panic|panic1|hang>[:once=<marker-path>]`.
//! The legacy `FLEET_FAIL_SHARD=<target>:<mode>` / `FLEET_FAIL_ONCE=<path>`
//! hooks are deprecated thin shims over exactly that targeted plan.
//!
//! Every firing prints one `# chaos:` line to stderr, so tests can assert
//! that a schedule actually injected something.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::cell::fnv1a;

/// An injection site: one class of fault at one I/O boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Worker exits immediately on receiving an `assign`.
    WorkerKill,
    /// Worker hangs silently (no heartbeats) on receiving an `assign`.
    WorkerHang,
    /// Worker finishes exactly one cell of the shard, then dies.
    WorkerDieAfterCell,
    /// Worker sleeps before computing a cell (latency, not loss).
    WorkerSlow,
    /// The model panics inside a cell (exercises `catch_unwind`).
    CellPanic,
    /// One byte of an outgoing `cell_done` line is flipped.
    CorruptMessage,
    /// The outgoing `cell_done` line is cut mid-write and the worker dies.
    TruncateMessage,
    /// The store writes a short (torn) cell file.
    TornCellWrite,
    /// The store damages the journal tail after an append.
    JournalDamage,
    /// The orchestrator fails to spawn a worker process.
    SpawnFail,
}

impl Site {
    fn name(self) -> &'static str {
        match self {
            Site::WorkerKill => "worker.kill",
            Site::WorkerHang => "worker.hang",
            Site::WorkerDieAfterCell => "worker.die_after_cell",
            Site::WorkerSlow => "worker.slow",
            Site::CellPanic => "cell.panic",
            Site::CorruptMessage => "msg.corrupt",
            Site::TruncateMessage => "msg.truncate",
            Site::TornCellWrite => "store.torn_write",
            Site::JournalDamage => "store.journal_damage",
            Site::SpawnFail => "orchestrator.spawn_fail",
        }
    }
}

/// Per-site firing probabilities in [0, 1].
#[derive(Debug, Clone, Copy, Default)]
pub struct Rates {
    kill: f64,
    hang: f64,
    die_after_cell: f64,
    slow: f64,
    cell_panic: f64,
    corrupt: f64,
    truncate: f64,
    torn_write: f64,
    journal_damage: f64,
    spawn_fail: f64,
}

impl Rates {
    fn of(&self, site: Site) -> f64 {
        match site {
            Site::WorkerKill => self.kill,
            Site::WorkerHang => self.hang,
            Site::WorkerDieAfterCell => self.die_after_cell,
            Site::WorkerSlow => self.slow,
            Site::CellPanic => self.cell_panic,
            Site::CorruptMessage => self.corrupt,
            Site::TruncateMessage => self.truncate,
            Site::TornCellWrite => self.torn_write,
            Site::JournalDamage => self.journal_damage,
            Site::SpawnFail => self.spawn_fail,
        }
    }

    fn for_profile(name: &str) -> Option<Rates> {
        Some(match name {
            "off" => Rates::default(),
            "kill" => Rates {
                kill: 0.12,
                hang: 0.05,
                die_after_cell: 0.12,
                slow: 0.10,
                ..Rates::default()
            },
            "corrupt" => Rates {
                corrupt: 0.18,
                truncate: 0.08,
                cell_panic: 0.10,
                ..Rates::default()
            },
            "torn" => Rates {
                torn_write: 0.20,
                journal_damage: 0.20,
                ..Rates::default()
            },
            "spawn" => Rates {
                spawn_fail: 0.85,
                ..Rates::default()
            },
            "mixed" => Rates {
                kill: 0.06,
                hang: 0.02,
                die_after_cell: 0.06,
                slow: 0.05,
                cell_panic: 0.05,
                corrupt: 0.08,
                truncate: 0.04,
                torn_write: 0.08,
                journal_damage: 0.08,
                spawn_fail: 0.05,
            },
            _ => return None,
        })
    }
}

/// A targeted single-shard fault (the regression-test form, and what the
/// deprecated `FLEET_FAIL_SHARD` shim maps onto).
#[derive(Debug, Clone, PartialEq)]
pub struct Targeted {
    /// Shard ordinal (as short digit text) or shard-ID prefix (4+ chars,
    /// or anything non-numeric).
    pub target: String,
    /// What happens when the shard is assigned.
    pub mode: TargetedMode,
    /// When set, the fault fires only while this marker file is absent
    /// (created on firing), so a retry of the same shard succeeds.
    pub once_marker: Option<String>,
}

/// Targeted fault modes (the legacy `FLEET_FAIL_SHARD` vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetedMode {
    /// Die immediately on assignment.
    Panic,
    /// Finish exactly one cell, then die (mid-shard degradation).
    PanicAfterOneCell,
    /// Stall silently without heartbeats (exercises the stall timeout).
    Hang,
}

impl Targeted {
    fn matches(&self, shard_id: &str, shard_index: usize) -> bool {
        // A short all-digit target is an ordinal, exclusively — content
        // hashes are hex, so "5" would otherwise also hit every shard
        // whose ID starts with '5'. Longer targets match by ID prefix.
        if self.target.len() < 4 && self.target.bytes().all(|b| b.is_ascii_digit()) {
            return self.target == shard_index.to_string();
        }
        shard_id.starts_with(&self.target)
    }

    /// True when the fault should fire now (consumes the once-marker).
    fn armed(&self, shard_id: &str, shard_index: usize) -> bool {
        if !self.matches(shard_id, shard_index) {
            return false;
        }
        match &self.once_marker {
            None => true,
            Some(path) => {
                if std::path::Path::new(path).exists() {
                    false
                } else {
                    if let Err(e) = std::fs::write(path, b"fired\n") {
                        // A lost marker would loop the fault on every
                        // retry; disarm and say so instead.
                        eprintln!(
                            "# chaos: cannot write once-marker {path}: {e}; disarming the fault"
                        );
                        return false;
                    }
                    true
                }
            }
        }
    }
}

/// The seeded injection plane. One instance per process (orchestrator,
/// each worker, the store all build their own from the same env spec, so
/// their schedules agree without any cross-process coordination).
#[derive(Debug)]
pub struct ChaosEngine {
    seed: u64,
    profile: String,
    rates: Rates,
    targeted: Option<Targeted>,
    /// Per-(site, key) occurrence counters for `fires_counted`: the Nth
    /// decision at the same logical point keys on N, so a rewrite of the
    /// same cell can roll a fresh decision deterministically.
    counts: Mutex<BTreeMap<String, u64>>,
}

impl ChaosEngine {
    /// Reads `FLEET_CHAOS` (preferred) or the deprecated
    /// `FLEET_FAIL_SHARD`/`FLEET_FAIL_ONCE` shim from the environment.
    /// `None` when no chaos is requested. A malformed spec must fail loud
    /// — a typo'd injection plan silently running the real workload is
    /// itself a fault-model bug — so this exits the process with a
    /// message rather than guessing.
    pub fn from_env() -> Option<ChaosEngine> {
        if let Ok(spec) = std::env::var("FLEET_CHAOS") {
            if spec.trim().is_empty() {
                return None;
            }
            return match ChaosEngine::parse(&spec) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!("bad FLEET_CHAOS '{spec}': {e}");
                    std::process::exit(2);
                }
            };
        }
        if let Ok(spec) = std::env::var("FLEET_FAIL_SHARD") {
            eprintln!(
                "# fleet: FLEET_FAIL_SHARD is deprecated; use FLEET_CHAOS=0:shard:{spec}\
                 [:once=<marker>] (same behaviour, chaos-engine schedule)"
            );
            let targeted = match parse_targeted(&spec, std::env::var("FLEET_FAIL_ONCE").ok()) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("bad FLEET_FAIL_SHARD '{spec}': {e}");
                    std::process::exit(2);
                }
            };
            return Some(ChaosEngine {
                seed: 0,
                profile: format!("shard:{spec}"),
                rates: Rates::default(),
                targeted: Some(targeted),
                counts: Mutex::new(BTreeMap::new()),
            });
        }
        None
    }

    /// Parses `<seed>:<profile>` where profile is a named rate set or the
    /// targeted form `shard:<target>:<mode>[:once=<path>]`.
    pub fn parse(spec: &str) -> Result<ChaosEngine, String> {
        let (seed_text, profile) = spec
            .split_once(':')
            .ok_or("expected <seed>:<profile> (profiles: off, kill, corrupt, torn, spawn, mixed, shard:<target>:<mode>)")?;
        let seed: u64 = seed_text
            .trim()
            .parse()
            .map_err(|_| format!("seed '{seed_text}' is not an unsigned integer"))?;
        if let Some(rest) = profile.strip_prefix("shard:") {
            let (spec_part, once) = match rest.split_once(":once=") {
                Some((s, path)) => (s, Some(path.to_string())),
                None => (rest, None),
            };
            let targeted = parse_targeted(spec_part, once)?;
            return Ok(ChaosEngine {
                seed,
                profile: profile.to_string(),
                rates: Rates::default(),
                targeted: Some(targeted),
                counts: Mutex::new(BTreeMap::new()),
            });
        }
        let rates = Rates::for_profile(profile).ok_or_else(|| {
            format!("unknown chaos profile '{profile}' (off, kill, corrupt, torn, spawn, mixed, shard:<target>:<mode>)")
        })?;
        Ok(ChaosEngine {
            seed,
            profile: profile.to_string(),
            rates,
            targeted: None,
            counts: Mutex::new(BTreeMap::new()),
        })
    }

    /// The `<seed>:<profile>` label, for logs.
    pub fn label(&self) -> String {
        format!("{}:{}", self.seed, self.profile)
    }

    /// Deterministic uniform draw in [0, 1) for a (site, key) pair.
    fn roll(&self, site: Site, key: &str) -> f64 {
        let mut bytes = Vec::with_capacity(8 + site.name().len() + key.len() + 2);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.name().as_bytes());
        bytes.push(b'|');
        bytes.extend_from_slice(key.as_bytes());
        // FNV-1a avalanches poorly into its high bits for short suffix
        // changes; a splitmix-style finalizer fixes the distribution
        // without giving up determinism.
        let mut h = fnv1a(&bytes);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the fault at `site` fire for this stable `key`? Pure in
    /// (seed, site, key) — replays identically on every run. Logs firings.
    pub fn fires(&self, site: Site, key: &str) -> bool {
        let rate = self.rates.of(site);
        if rate <= 0.0 {
            return false;
        }
        let hit = self.roll(site, key) < rate;
        if hit {
            eprintln!("# chaos: {} fired (key {key})", site.name());
        }
        hit
    }

    /// Like [`fires`](Self::fires) but the Nth call with the same
    /// (site, key) appends N to the key, so repeated work at the same
    /// logical point (a rewritten cell, a respawned worker) rolls fresh
    /// — still deterministic, because occurrence order per key is.
    pub fn fires_counted(&self, site: Site, key: &str) -> bool {
        let n = {
            let counter_key = format!("{}|{key}", site.name());
            // Lock poisoning cannot happen: no panic occurs under this lock.
            let Ok(mut counts) = self.counts.lock() else {
                return false;
            };
            let n = counts.entry(counter_key).or_insert(0);
            *n += 1;
            *n
        };
        self.fires(site, &format!("{key}#{n}"))
    }

    /// The targeted single-shard fault to apply when `shard_id`/
    /// `shard_index` is assigned, if any (consumes the once-marker).
    pub fn targeted_mode(&self, shard_id: &str, shard_index: usize) -> Option<TargetedMode> {
        let t = self.targeted.as_ref()?;
        if t.armed(shard_id, shard_index) {
            eprintln!(
                "# chaos: targeted {:?} fired on shard {shard_index} ({shard_id})",
                t.mode
            );
            Some(t.mode)
        } else {
            None
        }
    }

    /// Deterministically flips one byte of `line` (ASCII-safe: the flip
    /// keeps the byte printable so UTF-8 decoding survives and the
    /// corruption is caught by parsing/checksums, not by the reader's
    /// encoding layer).
    pub fn corrupt_line(&self, key: &str, line: &str) -> String {
        let mut bytes = line.as_bytes().to_vec();
        let printable: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_alphanumeric())
            .map(|(i, _)| i)
            .collect();
        if printable.is_empty() {
            return line.to_string();
        }
        let pick = (self.roll(Site::CorruptMessage, &format!("{key}|pos")) * printable.len() as f64)
            as usize;
        let i = printable[pick.min(printable.len() - 1)];
        // XOR with 0x02 stays inside ASCII alphanumerics' neighbourhood
        // (always printable, never a quote or backslash).
        bytes[i] ^= 0x02;
        // The flip preserves ASCII, so this cannot fail; fall back to the
        // original line rather than panicking on the fleet path.
        String::from_utf8(bytes).unwrap_or_else(|_| line.to_string())
    }

    /// Where to cut a line for a truncation fault: a deterministic point
    /// strictly inside the text.
    pub fn truncate_at(&self, key: &str, len: usize) -> usize {
        if len < 2 {
            return 0;
        }
        1 + (self.roll(Site::TruncateMessage, &format!("{key}|cut")) * (len - 1) as f64) as usize
    }

    /// Sleep applied by `WorkerSlow` firings, in milliseconds.
    pub fn slow_ms(&self) -> u64 {
        20
    }
}

/// Parses the targeted `<target>:<mode>` form shared by the chaos grammar
/// and the legacy shim.
fn parse_targeted(spec: &str, once_marker: Option<String>) -> Result<Targeted, String> {
    let (target, mode) = spec
        .split_once(':')
        .ok_or("expected <shard-ordinal-or-id-prefix>:<panic|panic1|hang>")?;
    let mode = match mode {
        "panic" => TargetedMode::Panic,
        "panic1" => TargetedMode::PanicAfterOneCell,
        "hang" => TargetedMode::Hang,
        other => return Err(format!("unknown fault mode '{other}'")),
    };
    if target.is_empty() {
        return Err("empty shard target".to_string());
    }
    Ok(Targeted {
        target: target.to_string(),
        mode,
        once_marker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse_and_unknowns_error() {
        for p in ["off", "kill", "corrupt", "torn", "spawn", "mixed"] {
            let c = ChaosEngine::parse(&format!("42:{p}")).expect(p);
            assert_eq!(c.label(), format!("42:{p}"));
        }
        assert!(ChaosEngine::parse("notanumber:kill").is_err());
        assert!(ChaosEngine::parse("7:explode").is_err());
        assert!(ChaosEngine::parse("7").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = ChaosEngine::parse("1:mixed").expect("parses");
        let b = ChaosEngine::parse("1:mixed").expect("parses");
        let c = ChaosEngine::parse("2:mixed").expect("parses");
        let keys: Vec<String> = (0..200).map(|i| format!("cell{i}#1")).collect();
        let fire = |e: &ChaosEngine| -> Vec<bool> {
            keys.iter()
                .map(|k| e.fires(Site::CorruptMessage, k))
                .collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed, same schedule");
        assert_ne!(fire(&a), fire(&c), "different seed, different schedule");
        let hits = fire(&a).iter().filter(|&&h| h).count();
        assert!(hits > 0, "mixed profile fires somewhere in 200 keys");
        assert!(hits < 60, "rate stays plausible ({hits}/200)");
    }

    #[test]
    fn counted_decisions_advance_per_occurrence() {
        let e = ChaosEngine::parse("3:torn").expect("parses");
        // The same key rolls a fresh (but deterministic) decision each
        // occurrence; collect a window and check both values appear.
        let seq: Vec<bool> = (0..64)
            .map(|_| e.fires_counted(Site::TornCellWrite, "cellX"))
            .collect();
        assert!(seq.iter().any(|&b| b), "fires at least once in 64 tries");
        assert!(!seq.iter().all(|&b| b), "does not fire every time");
        // And the sequence replays on a fresh engine.
        let f = ChaosEngine::parse("3:torn").expect("parses");
        let replay: Vec<bool> = (0..64)
            .map(|_| f.fires_counted(Site::TornCellWrite, "cellX"))
            .collect();
        assert_eq!(seq, replay);
    }

    #[test]
    fn targeted_plans_parse_match_and_arm_once() {
        let c = ChaosEngine::parse("0:shard:1:panic").expect("parses");
        assert_eq!(c.targeted_mode("whatever", 1), Some(TargetedMode::Panic));
        assert_eq!(c.targeted_mode("whatever", 2), None);
        let c = ChaosEngine::parse("0:shard:ab12:hang").expect("parses");
        assert_eq!(c.targeted_mode("ab12ffff00", 7), Some(TargetedMode::Hang));
        assert_eq!(c.targeted_mode("ffab12", 7), None);
        assert!(ChaosEngine::parse("0:shard:nomode").is_err());
        assert!(ChaosEngine::parse("0:shard::panic").is_err());
        assert!(ChaosEngine::parse("0:shard:1:explode").is_err());

        let marker = std::env::temp_dir().join(format!("chaos-once-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let c = ChaosEngine::parse(&format!("0:shard:0:panic1:once={}", marker.display()))
            .expect("parses");
        assert_eq!(
            c.targeted_mode("s", 0),
            Some(TargetedMode::PanicAfterOneCell),
            "first match fires"
        );
        assert_eq!(c.targeted_mode("s", 0), None, "second match is disarmed");
        assert_eq!(
            c.targeted_mode("s", 1),
            None,
            "non-matching shard never fires"
        );
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn corruption_is_deterministic_and_single_byte() {
        let e = ChaosEngine::parse("5:corrupt").expect("parses");
        let line = r#"{"type":"cell_done","cell_id":"abc123","payload":{"ipc":[1.5]}}"#;
        let a = e.corrupt_line("k", line);
        let b = e.corrupt_line("k", line);
        assert_eq!(a, b, "same key corrupts identically");
        assert_ne!(a, line, "something was actually flipped");
        let diffs = a.bytes().zip(line.bytes()).filter(|(x, y)| x != y).count();
        assert_eq!(diffs, 1, "exactly one byte differs");
        let cut = e.truncate_at("k", line.len());
        assert!(cut >= 1 && cut < line.len());
    }
}
