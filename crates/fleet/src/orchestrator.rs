//! The fleet orchestrator: spawns workers, deals shards, keeps the run
//! alive through crashes, stalls and timeouts, and streams every finished
//! cell into the [`ResultsStore`] the moment it lands.
//!
//! Fault model: a worker can die at any point (panic, OOM-kill, operator
//! `kill -9`), stall silently, or write garbage. Each of those costs at
//! most the *unfinished* cells of the shard it was running — finished
//! cells were already durable — and the shard's remainder is requeued
//! with exponential backoff up to a bounded retry budget. A shard that
//! exhausts its budget is reported failed; the run continues, finishes
//! everything else, and `--resume` against the same results directory
//! picks up exactly the missing cells.

// Wall-clock and detached threads are this file's job (timeouts, backoff,
// per-worker stdout readers); allowlisted in clippy.toml terms here and in
// simlint's path allowlist (crates/simlint/src/rules.rs).
#![allow(clippy::disallowed_methods)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write as _;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::cell::CellSpec;
use crate::chaos::{ChaosEngine, Site};
use crate::protocol::{FromWorker, ToWorker};
use crate::shard::{plan_shards, Shard};
use crate::store::{JournalEntry, ResultsStore, StoreError};
use crate::worker::CellRunner;

/// Orchestration knobs. `new(worker_cmd, workers)` gives production
/// defaults; every timeout has an env override (`FLEET_SHARD_TIMEOUT_MS`,
/// `FLEET_STALL_TIMEOUT_MS`, `FLEET_RETRIES`, `FLEET_BACKOFF_MS`,
/// `FLEET_STATUS_MS`, `FLEET_RUN_DEADLINE_MS`) so tests can compress time
/// without plumbing flags.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// argv of the worker process (e.g. `["/path/repro", "worker"]`).
    pub worker_cmd: Vec<String>,
    /// Target number of live worker processes.
    pub workers: usize,
    /// Shard count; `None` plans 4 shards per worker (cheap insurance:
    /// smaller retry units, better tail balancing).
    pub shards: Option<usize>,
    /// Hard cap on one shard attempt, end to end.
    pub shard_timeout: Duration,
    /// Max silence (no heartbeat, no result) from a busy worker.
    pub stall_timeout: Duration,
    /// Retries per shard beyond the first attempt.
    pub max_retries: usize,
    /// Base requeue delay; doubles each attempt.
    pub backoff: Duration,
    /// Period of the fleet status summary on stderr.
    pub status_every: Duration,
    /// Global wall-clock budget for the whole run: on expiry, in-flight
    /// shards are abandoned and the caller salvages whatever cells are
    /// already durable (`None` = no deadline).
    pub run_deadline: Option<Duration>,
}

/// Env-overridable number with a loud fallback: a value that does not
/// parse is *named and ignored*, never silently swallowed — a typo'd
/// `FLEET_SHARD_TIMEOUT_MS=5m` must not quietly run with ten minutes.
fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => match v.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "# fleet: ignoring {key}='{v}' (not an unsigned integer); using default {default}"
                );
                default
            }
        },
    }
}

fn env_ms(key: &str, default_ms: u64) -> Duration {
    Duration::from_millis(env_u64(key, default_ms))
}

impl FleetConfig {
    /// Production defaults plus env overrides.
    pub fn new(worker_cmd: Vec<String>, workers: usize) -> FleetConfig {
        FleetConfig {
            worker_cmd,
            workers: workers.max(1),
            shards: None,
            shard_timeout: env_ms("FLEET_SHARD_TIMEOUT_MS", 600_000),
            stall_timeout: env_ms("FLEET_STALL_TIMEOUT_MS", 10_000),
            max_retries: env_u64("FLEET_RETRIES", 2) as usize,
            backoff: env_ms("FLEET_BACKOFF_MS", 250),
            status_every: env_ms("FLEET_STATUS_MS", 5_000),
            run_deadline: match env_u64("FLEET_RUN_DEADLINE_MS", 0) {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
        }
    }
}

/// What a fleet run accomplished.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Cells in the plan.
    pub cells_total: usize,
    /// Cells already durable before this run started (resume skip).
    pub cells_prior: usize,
    /// Cells computed and persisted by this run.
    pub cells_completed: usize,
    /// Cells still missing after retries were exhausted, with the last
    /// known failure reason.
    pub failed_cells: Vec<(String, String)>,
    /// Shard attempts beyond each shard's first (retry pressure).
    pub retries: usize,
    /// Worker processes that died or were killed by the orchestrator.
    pub worker_deaths: usize,
    /// LLC accesses simulated by this run's completed cells.
    pub sim_accesses: u64,
    /// Orchestration wall clock.
    pub wall_seconds: f64,
    /// True when the run was cut short by `FLEET_RUN_DEADLINE_MS` — the
    /// failed cells were abandoned, not exhausted; the caller should
    /// salvage what is durable and report partial coverage.
    pub deadline_expired: bool,
    /// True when every worker spawn failed and the cells were executed by
    /// the in-process fallback runner instead.
    pub ran_inprocess: bool,
}

impl FleetReport {
    /// True when every planned cell is durable.
    pub fn complete(&self) -> bool {
        self.failed_cells.is_empty()
    }

    /// The final one-line retry/failure summary.
    pub fn summary_line(&self) -> String {
        format!(
            "# fleet: {done}/{total} cells done ({prior} resumed, {fresh} computed) · {retries} shard retries · {deaths} worker deaths · {failed} failed",
            done = self.cells_prior + self.cells_completed,
            total = self.cells_total,
            prior = self.cells_prior,
            fresh = self.cells_completed,
            retries = self.retries,
            deaths = self.worker_deaths,
            failed = self.failed_cells.len(),
        )
    }
}

/// Human-scaled count (`412k`, `1.3M`) for status lines.
fn fmt_si(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.1}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.0}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

enum Event {
    Msg(FromWorker),
    /// Worker stdout closed (process death) or emitted garbage
    /// (protocol corruption — the reader stops and we recycle).
    Gone(String),
}

enum WorkerState {
    /// Spawned, waiting for `ready`.
    Starting,
    Idle,
    Busy {
        shard_ix: usize,
        started: Instant,
    },
}

struct WorkerSlot {
    child: Child,
    stdin: ChildStdin,
    state: WorkerState,
    last_seen: Instant,
}

struct ShardState {
    shard: Shard,
    attempts: usize,
    /// Cell IDs not yet durable; shrinks as `cell_done` lands.
    remaining: BTreeSet<String>,
    /// Last failure reason (worker death, timeout, cell errors).
    last_error: String,
    done: bool,
    failed: bool,
}

/// Runs `cells` across a worker fleet, persisting results into `store`.
/// Already-durable cells (per the store's journal, checksum-verified) are
/// skipped, which is both the `--resume` path and the mid-shard-crash
/// recovery path.
///
/// `fallback` is the graceful-degradation path for total spawn failure:
/// when no worker process can be started at all (bad binary path, fork
/// limits, chaos), the remaining cells are executed in-process through it
/// — slower, single-process, but the run completes instead of dying.
/// `None` keeps the old fail-the-run behaviour.
pub fn run_fleet(
    cells: &[CellSpec],
    store: &ResultsStore,
    cfg: &FleetConfig,
    fallback: Option<&dyn CellRunner>,
) -> Result<FleetReport, StoreError> {
    let t0 = Instant::now();
    let chaos = ChaosEngine::from_env();
    let done_prior = store.done_cell_ids()?;
    let mut report = FleetReport {
        cells_total: cells.len(),
        cells_prior: cells
            .iter()
            .filter(|c| done_prior.contains(&c.id()))
            .count(),
        ..FleetReport::default()
    };

    let pending: Vec<CellSpec> = cells
        .iter()
        .filter(|c| !done_prior.contains(&c.id()))
        .cloned()
        .collect();
    if pending.is_empty() {
        report.wall_seconds = t0.elapsed().as_secs_f64();
        eprintln!("{}", report.summary_line());
        return Ok(report);
    }

    let n_shards = cfg.shards.unwrap_or(cfg.workers * 4);
    let shards = plan_shards(&pending, n_shards);
    let mut states: Vec<ShardState> = shards
        .into_iter()
        .map(|shard| ShardState {
            remaining: shard.cells.iter().map(|c| c.id()).collect(),
            shard,
            attempts: 0,
            last_error: String::new(),
            done: false,
            failed: false,
        })
        .collect();
    let specs_by_id: BTreeMap<String, CellSpec> =
        pending.iter().map(|c| (c.id(), c.clone())).collect();
    eprintln!(
        "# fleet: {} cells ({} resumed) → {} shards across {} workers",
        cells.len(),
        report.cells_prior,
        states.len(),
        cfg.workers.min(states.len()),
    );

    // Requeue entries: (shard index, earliest assignment time).
    let mut queue: VecDeque<(usize, Instant)> = (0..states.len()).map(|i| (i, t0)).collect();

    let (tx, rx) = mpsc::channel::<(u64, Event)>();
    // BTreeMap so the idle-worker scan and status counts iterate in uid
    // order — worker scheduling stays reproducible given the same event
    // sequence.
    let mut workers: BTreeMap<u64, WorkerSlot> = BTreeMap::new();
    let mut next_uid: u64 = 0;
    let mut last_status = Instant::now();

    let spawn_worker = |uid: u64, tx: &mpsc::Sender<(u64, Event)>| -> Option<WorkerSlot> {
        if let Some(ch) = &chaos {
            if ch.fires(Site::SpawnFail, &uid.to_string()) {
                eprintln!("# fleet: chaos: refusing to spawn worker {uid}");
                return None;
            }
        }
        let mut cmd = Command::new(&cfg.worker_cmd[0]);
        cmd.args(&cfg.worker_cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = match cmd.spawn() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("# fleet: failed to spawn worker: {e}");
                return None;
            }
        };
        // Stdio::piped() was requested, so these are present on any sane
        // platform — but a panic here would kill the whole run, so treat
        // absence as a spawn failure and run degraded instead.
        let (Some(stdout), Some(stdin)) = (child.stdout.take(), child.stdin.take()) else {
            eprintln!("# fleet: worker spawned without piped stdio; discarding it");
            let _ = child.kill();
            let _ = child.wait();
            return None;
        };
        let tx = tx.clone();
        std::thread::spawn(move || {
            use std::io::BufRead as _;
            let reader = std::io::BufReader::new(stdout);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                match FromWorker::from_line(&line) {
                    Ok(msg) => {
                        if tx.send((uid, Event::Msg(msg))).is_err() {
                            return; // orchestrator gone
                        }
                    }
                    Err(e) => {
                        let _ = tx.send((uid, Event::Gone(format!("protocol corruption: {e}"))));
                        return;
                    }
                }
            }
            let _ = tx.send((uid, Event::Gone("worker exited".to_string())));
        });
        Some(WorkerSlot {
            child,
            stdin,
            state: WorkerState::Starting,
            last_seen: Instant::now(),
        })
    };

    // A shard attempt ended without completing: requeue with backoff or
    // mark permanently failed.
    let fail_attempt = |states: &mut Vec<ShardState>,
                        queue: &mut VecDeque<(usize, Instant)>,
                        report: &mut FleetReport,
                        shard_ix: usize,
                        reason: &str| {
        let n_shards = states.len();
        let st = &mut states[shard_ix];
        if st.done || st.failed {
            return;
        }
        st.last_error = reason.to_string();
        if st.attempts <= cfg.max_retries {
            let delay = cfg.backoff * 2u32.saturating_pow(st.attempts.saturating_sub(1) as u32);
            report.retries += 1;
            eprintln!(
                "# fleet: shard {}/{} ({}) attempt {} failed ({reason}); retrying in {:?}",
                st.shard.index + 1,
                n_shards,
                &st.shard.id[..8],
                st.attempts,
                delay
            );
            queue.push_back((shard_ix, Instant::now() + delay));
        } else {
            st.failed = true;
            eprintln!(
                "# fleet: shard {}/{} ({}) FAILED after {} attempts: {reason}",
                st.shard.index + 1,
                n_shards,
                &st.shard.id[..8],
                st.attempts,
            );
        }
    };

    let mut spawn_strikes = 0usize;
    loop {
        // Finished?
        if states.iter().all(|s| s.done || s.failed) {
            break;
        }

        // Global run deadline: abandon what is in flight and let the
        // caller salvage the durable cells into partial figures.
        if let Some(deadline) = cfg.run_deadline {
            if t0.elapsed() >= deadline {
                eprintln!(
                    "# fleet: run deadline ({:.1}s) expired; abandoning unfinished shards",
                    deadline.as_secs_f64()
                );
                report.deadline_expired = true;
                for st in states.iter_mut().filter(|s| !s.done && !s.failed) {
                    st.failed = true;
                    st.last_error = "run deadline expired".to_string();
                }
                break;
            }
        }

        // Keep the fleet at strength while work remains unassigned or in
        // flight.
        let open_shards = states.iter().filter(|s| !s.done && !s.failed).count();
        while workers.len() < cfg.workers.min(open_shards.max(1)) {
            let uid = next_uid;
            next_uid += 1;
            match spawn_worker(uid, &tx) {
                Some(slot) => {
                    workers.insert(uid, slot);
                }
                None => break, // spawn failure: run degraded with what we have
            }
        }
        if workers.is_empty() && open_shards > 0 {
            spawn_strikes += 1;
            if spawn_strikes < 3 {
                // Transient? Pause briefly and try again before deciding
                // the fleet is unspawnable.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            if let Some(runner) = fallback {
                // Total spawn failure with a fallback runner: execute the
                // remaining cells in this process. Slower and serial, but
                // the run completes instead of dying.
                eprintln!(
                    "# fleet: cannot spawn workers after {spawn_strikes} attempts; \
                     falling back to in-process execution"
                );
                report.ran_inprocess = true;
                run_inprocess(runner, &mut states, store, &specs_by_id, &mut report)?;
                continue; // loop top sees everything done/failed
            }
            // Nothing spawnable and no fallback — fail every open shard
            // so the run terminates with a report instead of spinning.
            for i in 0..states.len() {
                if !states[i].done && !states[i].failed {
                    states[i].attempts = cfg.max_retries + 1;
                    fail_attempt(
                        &mut states,
                        &mut queue,
                        &mut report,
                        i,
                        "cannot spawn workers",
                    );
                }
            }
            continue;
        }
        if !workers.is_empty() {
            spawn_strikes = 0;
        }

        // Hand pending shards to idle workers.
        let now = Instant::now();
        let idle_uids: Vec<u64> = workers
            .iter()
            .filter(|(_, w)| matches!(w.state, WorkerState::Idle))
            .map(|(uid, _)| *uid)
            .collect();
        for uid in idle_uids {
            // Pop the first ripe queue entry.
            let ripe = queue.iter().position(|&(ix, not_before)| {
                not_before <= now && !states[ix].done && !states[ix].failed
            });
            let Some(pos) = ripe else { break };
            // The idle snapshot can go stale if this worker was recycled
            // earlier in the pass; skip it and re-deal next iteration.
            let Some(w) = workers.get_mut(&uid) else {
                continue;
            };
            let Some((shard_ix, _)) = queue.remove(pos) else {
                break;
            };
            let st = &mut states[shard_ix];
            // Only cells not yet durable — after a mid-shard death the
            // retry runs just the remainder.
            let todo: Vec<CellSpec> = st
                .shard
                .cells
                .iter()
                .filter(|c| st.remaining.contains(&c.id()))
                .cloned()
                .collect();
            if todo.is_empty() {
                st.done = true;
                continue;
            }
            st.attempts += 1;
            let msg = ToWorker::Assign {
                shard_id: st.shard.id.clone(),
                shard_index: st.shard.index,
                attempt: st.attempts,
                cells: todo,
            };
            if w.stdin.write_all(msg.to_line().as_bytes()).is_err() {
                // Pipe already broken — treat as a death; the reader
                // thread's Gone event will requeue via the normal path.
                st.attempts -= 1;
                queue.push_front((shard_ix, now));
                continue;
            }
            let _ = w.stdin.flush();
            w.state = WorkerState::Busy {
                shard_ix,
                started: now,
            };
            w.last_seen = now;
        }

        // Wait for traffic.
        let event = rx.recv_timeout(Duration::from_millis(50));
        match event {
            Ok((uid, Event::Msg(msg))) => {
                let Some(w) = workers.get_mut(&uid) else {
                    continue; // message from an already-recycled worker
                };
                w.last_seen = Instant::now();
                match msg {
                    FromWorker::Ready { pid: _ } => {
                        if matches!(w.state, WorkerState::Starting) {
                            w.state = WorkerState::Idle;
                        }
                    }
                    FromWorker::Heartbeat { .. } => {}
                    FromWorker::CellDone {
                        cell_id,
                        wall_ms,
                        accesses,
                        payload,
                        shard_id,
                    } => {
                        let Some(spec) = specs_by_id.get(&cell_id) else {
                            eprintln!(
                                "# fleet: ignoring unknown cell {cell_id} from shard {shard_id}"
                            );
                            continue;
                        };
                        store.write_cell(
                            spec,
                            &payload,
                            &crate::store::JournalEntry {
                                cell_id: cell_id.clone(),
                                shard_id: shard_id.clone(),
                                wall_ms,
                                accesses,
                            },
                        )?;
                        report.cells_completed += 1;
                        report.sim_accesses += accesses;
                        if let WorkerState::Busy { shard_ix, .. } = w.state {
                            states[shard_ix].remaining.remove(&cell_id);
                        }
                    }
                    FromWorker::CellError {
                        cell_id, message, ..
                    } => {
                        eprintln!("# fleet: cell {cell_id} failed on worker: {message}");
                        if let WorkerState::Busy { shard_ix, .. } = w.state {
                            states[shard_ix].last_error = format!("cell {cell_id}: {message}");
                        }
                    }
                    FromWorker::ShardDone { .. } => {
                        if let WorkerState::Busy { shard_ix, started } = w.state {
                            w.state = WorkerState::Idle;
                            let n_shards = states.len();
                            let st = &mut states[shard_ix];
                            if st.remaining.is_empty() {
                                st.done = true;
                                eprintln!(
                                    "# fleet: shard {}/{} ({}) done · {} cells · {:.1}s",
                                    st.shard.index + 1,
                                    n_shards,
                                    &st.shard.id[..8],
                                    st.shard.cells.len(),
                                    started.elapsed().as_secs_f64(),
                                );
                            } else {
                                let reason = if st.last_error.is_empty() {
                                    "cells missing after shard_done".to_string()
                                } else {
                                    st.last_error.clone()
                                };
                                fail_attempt(
                                    &mut states,
                                    &mut queue,
                                    &mut report,
                                    shard_ix,
                                    &reason,
                                );
                            }
                        }
                    }
                }
            }
            Ok((uid, Event::Gone(reason))) => {
                let Some(mut w) = workers.remove(&uid) else {
                    continue; // already recycled by a timeout kill
                };
                let _ = w.child.kill();
                let _ = w.child.wait();
                report.worker_deaths += 1;
                if let WorkerState::Busy { shard_ix, .. } = w.state {
                    fail_attempt(&mut states, &mut queue, &mut report, shard_ix, &reason);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }

        // Enforce stall and shard timeouts.
        let now = Instant::now();
        let timed_out: Vec<(u64, usize, String)> = workers
            .iter()
            .filter_map(|(uid, w)| match w.state {
                WorkerState::Busy { shard_ix, started } => {
                    if now.duration_since(w.last_seen) > cfg.stall_timeout {
                        Some((*uid, shard_ix, "worker stalled (no heartbeat)".to_string()))
                    } else if now.duration_since(started) > cfg.shard_timeout {
                        Some((*uid, shard_ix, "shard timeout".to_string()))
                    } else {
                        None
                    }
                }
                WorkerState::Starting => {
                    if now.duration_since(w.last_seen) > cfg.shard_timeout {
                        Some((*uid, usize::MAX, "worker never became ready".to_string()))
                    } else {
                        None
                    }
                }
                WorkerState::Idle => None,
            })
            .collect();
        for (uid, shard_ix, reason) in timed_out {
            if let Some(mut w) = workers.remove(&uid) {
                let _ = w.child.kill();
                let _ = w.child.wait();
                report.worker_deaths += 1;
                if shard_ix != usize::MAX {
                    fail_attempt(&mut states, &mut queue, &mut report, shard_ix, &reason);
                }
            }
        }

        // Periodic status summary.
        if last_status.elapsed() >= cfg.status_every {
            last_status = Instant::now();
            let done_cells = report.cells_prior + report.cells_completed;
            let busy = workers
                .iter()
                .filter(|(_, w)| matches!(w.state, WorkerState::Busy { .. }))
                .count();
            let shards_done = states.iter().filter(|s| s.done).count();
            let rate = report.sim_accesses as f64 / t0.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "# fleet: {done_cells}/{} cells · {shards_done}/{} shards · {busy}/{} workers busy · {} retries · {} acc/s",
                report.cells_total,
                states.len(),
                workers.len(),
                report.retries,
                fmt_si(rate),
            );
        }
    }

    // Drain: ask live workers to exit, then reap (kill stragglers).
    for (_, w) in workers.iter_mut() {
        let _ = w.stdin.write_all(ToWorker::Exit.to_line().as_bytes());
        let _ = w.stdin.flush();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    for (_, mut w) in std::mem::take(&mut workers) {
        loop {
            match w.child.try_wait() {
                Ok(Some(_)) => break,
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                _ => {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    break;
                }
            }
        }
    }

    // Collect permanent failures per cell.
    for st in &states {
        if st.failed {
            for id in &st.remaining {
                report.failed_cells.push((
                    id.clone(),
                    if st.last_error.is_empty() {
                        "shard failed".to_string()
                    } else {
                        st.last_error.clone()
                    },
                ));
            }
        }
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    eprintln!("{}", report.summary_line());
    if !report.failed_cells.is_empty() {
        for (id, why) in &report.failed_cells {
            if let Some(spec) = specs_by_id.get(id) {
                eprintln!("# fleet: FAILED cell {} ({}): {why}", id, spec.canonical());
            } else {
                eprintln!("# fleet: FAILED cell {id}: {why}");
            }
        }
    }
    Ok(report)
}

/// Executes every remaining cell through `runner` in this process — the
/// degradation path for total worker-spawn failure. Cell panics are
/// caught (a broken model costs its cell, not the orchestrator) and
/// results go through the same durable store writes as fleet cells.
fn run_inprocess(
    runner: &dyn CellRunner,
    states: &mut [ShardState],
    store: &ResultsStore,
    specs_by_id: &BTreeMap<String, CellSpec>,
    report: &mut FleetReport,
) -> Result<(), StoreError> {
    for st in states.iter_mut().filter(|s| !s.done && !s.failed) {
        st.attempts += 1;
        let ids: Vec<String> = st.remaining.iter().cloned().collect();
        for id in ids {
            let Some(spec) = specs_by_id.get(&id) else {
                continue;
            };
            let started = Instant::now();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner.run_cell(spec)));
            match outcome {
                Ok(Ok((payload, accesses))) => {
                    store.write_cell(
                        spec,
                        &payload,
                        &JournalEntry {
                            cell_id: id.clone(),
                            shard_id: st.shard.id.clone(),
                            wall_ms: started.elapsed().as_millis() as u64,
                            accesses,
                        },
                    )?;
                    st.remaining.remove(&id);
                    report.cells_completed += 1;
                    report.sim_accesses += accesses;
                }
                Ok(Err(message)) => {
                    eprintln!("# fleet: in-process cell {id} failed: {message}");
                    st.last_error = format!("cell {id}: {message}");
                }
                Err(panic) => {
                    let message = crate::worker::panic_message(panic);
                    eprintln!("# fleet: in-process cell {id} panicked: {message}");
                    st.last_error = format!("cell {id} panicked: {message}");
                }
            }
        }
        if st.remaining.is_empty() {
            st.done = true;
        } else {
            st.failed = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_summary_counts() {
        let r = FleetReport {
            cells_total: 10,
            cells_prior: 4,
            cells_completed: 5,
            failed_cells: vec![("x".to_string(), "why".to_string())],
            retries: 2,
            worker_deaths: 1,
            sim_accesses: 1_000,
            wall_seconds: 1.0,
            ..FleetReport::default()
        };
        let line = r.summary_line();
        assert!(line.contains("9/10 cells"));
        assert!(line.contains("4 resumed"));
        assert!(line.contains("1 failed"));
        assert!(!r.complete());
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(950.0), "950");
        assert_eq!(fmt_si(412_000.0), "412k");
        assert_eq!(fmt_si(1_300_000.0), "1.3M");
        assert_eq!(fmt_si(2_500_000_000.0), "2.5G");
    }
}
