//! Offline stand-in for `proptest`.
//!
//! A miniature property-testing runner exposing the subset of the proptest
//! API this workspace uses: the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros, `Strategy` with `prop_map`, numeric-range and
//! tuple strategies, `any::<bool>()` and `collection::vec`. Differences from
//! the real crate, by design:
//!
//! * no shrinking — a failing case reports its values via `Debug`-free
//!   message text and the deterministic case index instead;
//! * fixed deterministic seeding (override the case count with
//!   `PROPTEST_CASES`), so CI failures always reproduce locally;
//! * strategies sample eagerly from a single RNG stream.
//!
//! See `vendor/README.md` for how to swap the real crate back in.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values (no shrinking in the stub, so this is
        /// a plain map).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// Uniformly random values of a whole type (see [`crate::arbitrary`]).
    #[derive(Clone, Copy, Debug)]
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl Strategy for AnyStrategy<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng.gen::<bool>()
        }
    }

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {$(
            impl Strategy for AnyStrategy<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_any_uint!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use std::marker::PhantomData;

    /// `any::<T>()` — the whole-type strategy. Supported for the types the
    /// workspace tests use (`bool` and unsigned integers).
    pub fn any<T>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Deterministic per-test RNG. Each `proptest!` test derives one from its
    /// function name so adding tests never perturbs existing streams.
    pub struct TestRng {
        pub rng: SmallRng,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(h),
            }
        }
    }

    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Cases per property: `PROPTEST_CASES` env override, else 64.
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __cases = $crate::test_runner::case_count();
                for __case in 0..__cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
