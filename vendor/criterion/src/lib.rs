//! Offline stand-in for `criterion`.
//!
//! Supports the harness surface the bench targets use — `Criterion`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros (both the struct-style and list-style forms).
//! Instead of criterion's statistical machinery it runs a fixed warm-up plus
//! `sample_size` timed batches and prints median/mean ns-per-iteration, which
//! is enough to compare kernels across code changes. It honours cargo's
//! `--bench` convention of a `--test` flag (run each benchmark once) so
//! `cargo test --benches` stays cheap. See `vendor/README.md` for the swap
//! procedure.

// A benchmark harness exists to read the wall clock.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configured per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_target: if self.test_mode { 1 } else { self.sample_size },
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_target: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate batch size so one sample takes ~1 ms, keeping timer
        // overhead negligible for sub-microsecond kernels.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_target {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{id:40} median {median:12.1} ns/iter   mean {mean:12.1} ns/iter   ({} samples x {} iters)",
            per_iter.len(),
            self.iters_per_sample
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
