//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real derive
//! macros are replaced by no-ops: `#[derive(Serialize, Deserialize)]`
//! compiles everywhere it appears but emits no impls. Nothing in this
//! workspace serializes at runtime today (the derives exist so configs and
//! stats become dump-able once a real serde is swapped in), so empty
//! expansions are sufficient. See `vendor/README.md` for the swap procedure.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
