//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for this workspace: the `Serialize` /
//! `Deserialize` trait names and the derive macros (re-exported from the
//! no-op `serde_derive` stub). No data format ships with the stub, so the
//! traits carry no methods; they exist so `use serde::{Deserialize,
//! Serialize}` and trait bounds resolve. Swap in the real crates by editing
//! `[workspace.dependencies]` — see `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de>: Sized {}
