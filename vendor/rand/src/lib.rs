//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API this workspace uses — `SmallRng`,
//! `Rng::{gen, gen_range, gen_bool}`, `RngCore`, `SeedableRng` — on top of a
//! genuine xoshiro256++ generator (the same algorithm the real `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64 exactly like
//! `SeedableRng::seed_from_u64`. Statistical quality therefore matches the
//! real crate for the simulator's purposes; only the API breadth is reduced.
//! See `vendor/README.md` for how to swap the real crate back in.

use std::ops::Range;

/// Core RNG interface: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction; only `seed_from_u64` is needed here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as the real rand does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable via `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection keeps the draw exactly uniform.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real `SmallRng` on 64-bit
    /// targets. Fast, small state, passes BigCrush; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            // SplitMix64 expansion, as rand_core::SeedableRng specifies.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ with SplitMix64-expanded seeds,
        // cross-checked against an independent implementation of the
        // published algorithms (Blackman & Vigna's xoshiro256++ update and
        // the SplitMix64 seeding chain rand_core specifies).
        let mut a = SmallRng::seed_from_u64(0);
        assert_eq!(a.next_u64(), 0x53175d61490b23df);
        assert_eq!(a.next_u64(), 0x61da6f3dc380d507);
        assert_eq!(a.next_u64(), 0x5c0fdf91ec9a7bfc);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(b.next_u64(), 0xd0764d4f4476689f);
        assert_eq!(b.next_u64(), 0x519e4174576f3791);
        assert_eq!(b.next_u64(), 0xfbe07cfb0c24ed8c);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
